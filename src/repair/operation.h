// Operations ±F on databases (Definition 1): +F adds a set of facts from
// the base B(D,Σ), −F removes a set of facts. Operations are value types
// ordered deterministically so chains enumerate reproducibly.

#ifndef OPCQA_REPAIR_OPERATION_H_
#define OPCQA_REPAIR_OPERATION_H_

#include <compare>
#include <string>
#include <vector>

#include "relational/database.h"

namespace opcqa {

class Operation {
 public:
  enum class Kind { kAdd, kRemove };

  Operation() = default;
  /// `facts` is sorted and deduplicated internally; must be non-empty.
  Operation(Kind kind, std::vector<Fact> facts);

  static Operation Add(std::vector<Fact> facts) {
    return Operation(Kind::kAdd, std::move(facts));
  }
  static Operation Remove(std::vector<Fact> facts) {
    return Operation(Kind::kRemove, std::move(facts));
  }
  /// Removal of already-interned facts; `ids` must be non-empty, sorted in
  /// fact value order and deduplicated (the hot-path constructor of
  /// JustifiedDeletions — skips re-interning).
  static Operation RemoveIds(const std::vector<FactId>& ids);

  Kind kind() const { return kind_; }
  bool is_add() const { return kind_ == Kind::kAdd; }
  bool is_remove() const { return kind_ == Kind::kRemove; }
  const std::vector<Fact>& facts() const { return facts_; }
  /// Interned ids of facts(), in the same (value-sorted) order.
  const std::vector<FactId>& fact_ids() const { return fact_ids_; }
  size_t size() const { return facts_.size(); }

  /// In-place application: D := D ∪ F or D := D − F.
  void ApplyTo(Database* db) const;
  /// In-place inverse application: undoes ApplyTo on the same database.
  void RevertOn(Database* db) const;
  /// Functional application.
  Database Apply(const Database& db) const;

  /// True when `fact` ∈ F.
  bool Touches(const Fact& fact) const;
  /// True when F and `facts` intersect.
  bool Intersects(const std::vector<Fact>& facts) const;

  // fact_ids_ is derived from facts_, so ordering over (kind_, facts_) is
  // total; spelling it out keeps the derived member out of the comparison.
  bool operator==(const Operation& other) const {
    return kind_ == other.kind_ && facts_ == other.facts_;
  }
  auto operator<=>(const Operation& other) const {
    if (auto cmp = kind_ <=> other.kind_; cmp != 0) return cmp;
    return facts_ <=> other.facts_;
  }

  /// "+{S(a,b,c)}" / "-{R(a,b), R(a,c)}".
  std::string ToString(const Schema& schema) const;

 private:
  Kind kind_ = Kind::kAdd;
  std::vector<Fact> facts_;      // sorted, unique
  std::vector<FactId> fact_ids_; // interned facts_, same order
};

/// A sequence of operations (a candidate repairing sequence).
using OperationSequence = std::vector<Operation>;

std::string SequenceToString(const OperationSequence& sequence,
                             const Schema& schema);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_OPERATION_H_
