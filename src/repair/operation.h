// Operations ±F on databases (Definition 1): +F adds a set of facts from
// the base B(D,Σ), −F removes a set of facts. Operations are value types
// ordered deterministically so chains enumerate reproducibly.

#ifndef OPCQA_REPAIR_OPERATION_H_
#define OPCQA_REPAIR_OPERATION_H_

#include <compare>
#include <string>
#include <vector>

#include "relational/database.h"

namespace opcqa {

class Operation {
 public:
  enum class Kind { kAdd, kRemove };

  Operation() = default;
  /// `facts` is sorted and deduplicated internally; must be non-empty.
  Operation(Kind kind, std::vector<Fact> facts);

  static Operation Add(std::vector<Fact> facts) {
    return Operation(Kind::kAdd, std::move(facts));
  }
  static Operation Remove(std::vector<Fact> facts) {
    return Operation(Kind::kRemove, std::move(facts));
  }

  Kind kind() const { return kind_; }
  bool is_add() const { return kind_ == Kind::kAdd; }
  bool is_remove() const { return kind_ == Kind::kRemove; }
  const std::vector<Fact>& facts() const { return facts_; }
  size_t size() const { return facts_.size(); }

  /// In-place application: D := D ∪ F or D := D − F.
  void ApplyTo(Database* db) const;
  /// Functional application.
  Database Apply(const Database& db) const;

  /// True when `fact` ∈ F.
  bool Touches(const Fact& fact) const;
  /// True when F and `facts` intersect.
  bool Intersects(const std::vector<Fact>& facts) const;

  auto operator<=>(const Operation&) const = default;

  /// "+{S(a,b,c)}" / "-{R(a,b), R(a,c)}".
  std::string ToString(const Schema& schema) const;

 private:
  Kind kind_ = Kind::kAdd;
  std::vector<Fact> facts_;  // sorted, unique
};

/// A sequence of operations (a candidate repairing sequence).
using OperationSequence = std::vector<Operation>;

std::string SequenceToString(const OperationSequence& sequence,
                             const Schema& schema);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_OPERATION_H_
