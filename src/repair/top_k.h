// Anytime top-k repair search — an engine-level optimization in the
// spirit of Section 6's "Optimizations" direction: often one only needs
// the most probable repair(s) (MAP repair, data cleaning suggestions),
// not the full FP^#P distribution.
//
// The repairing chain is a tree, so the probability of reaching a state
// only decreases along a path. Best-first expansion by path probability
// therefore explores high-mass regions first; at any point,
//
//   * every discovered repair carries a lower bound on its probability
//     (the mass of the absorbing states found so far that map to it), and
//   * `frontier_mass` (the total probability of unexpanded states) upper-
//     bounds both the mass any undiscovered repair can have and the mass
//     any discovered repair can still gain.
//
// The search certifies the top-k set as soon as the k-th best discovered
// lower bound is ≥ the (k+1)-th best + frontier mass — no unexplored or
// trailing repair can break into the top k. Expanding to an empty
// frontier reproduces exact enumeration.

#ifndef OPCQA_REPAIR_TOP_K_H_
#define OPCQA_REPAIR_TOP_K_H_

#include <vector>

#include "repair/repair_enumerator.h"

namespace opcqa {

class RepairSpaceCache;

struct TopKOptions {
  /// Hard budget on expanded states.
  size_t max_states = 1u << 22;
  /// Stop early once frontier mass drops to or below this value (0 =
  /// run until certified / exhausted / out of budget).
  Rational frontier_epsilon = Rational(0);
  /// Transposition merging (repair/memo.h): frontier states reaching the
  /// same (database, eliminated-set) key — verified against the real id
  /// sets — are merged into one entry carrying the summed path mass, so a
  /// shared suffix is expanded once instead of once per path. Applied only
  /// when sound (MemoizationApplicable; ignored otherwise). When the
  /// search drains the frontier (`exact`), discovered repairs, exact
  /// Rational mass totals and per-repair sequence counts are identical to
  /// the unmerged search. Under a max_states/epsilon cutoff the merged
  /// search spends its budget on *distinct* states and therefore explores
  /// further: lower bounds are at least as tight, but the discovered set
  /// and masses are not comparable entry-by-entry with the unmerged run.
  bool memoize = false;
  /// Cross-query persistence (repair/repair_cache.h; not owned, applied
  /// only when `memoize` is sound). The search *consumes* subtrees an
  /// earlier enumeration over the same root recorded: popping a state
  /// whose completed outcome is cached folds the exact subtree masses in
  /// directly — equivalent to fully expanding it, so `exact`/certified
  /// semantics are unchanged. Best-first order cannot delimit completed
  /// subtrees on the way out, so the search never inserts.
  RepairSpaceCache* cache = nullptr;
};

struct TopKResult {
  /// Discovered repairs, most probable first. Probabilities are exact
  /// lower bounds; when `exact` they are the true probabilities.
  std::vector<RepairInfo> repairs;
  /// Mass of successful / failing absorbing states found so far.
  Rational explored_success_mass;
  Rational explored_failing_mass;
  /// Total probability of states not yet expanded.
  Rational frontier_mass;
  /// True when the frontier was exhausted (full enumeration).
  bool exact = false;
  /// True when the top-k prefix can no longer change (see file comment).
  bool certified = false;
  size_t states_expanded = 0;

  /// The best-known repair (CHECK-fails when none was found).
  const RepairInfo& Map() const;
};

/// Best-first search for the k most probable operational repairs.
TopKResult TopKRepairs(const Database& db, const ConstraintSet& constraints,
                       const ChainGenerator& generator, size_t k,
                       const TopKOptions& options = {});

}  // namespace opcqa

#endif  // OPCQA_REPAIR_TOP_K_H_
