#include "repair/preference_generator.h"

#include <set>

#include "util/logging.h"

namespace opcqa {

std::vector<Rational> PreferenceChainGenerator::Probabilities(
    const RepairingState& state,
    const std::vector<Operation>& extensions) const {
  const Database& db = state.current();
  // VΣ(D): atoms involved in a violation.
  std::set<Fact> involved;
  for (const Violation& v : state.violations()) {
    for (const Fact& fact : BodyImage(state.context().constraints, v)) {
      involved.insert(fact);
    }
  }
  // w(Pref(a,b), D) = |{Pref(a,·) ∈ D}|.
  const FactStore& store = FactStore::Global();
  auto weight = [&](const Fact& fact) -> int64_t {
    OPCQA_CHECK_EQ(fact.pred(), pref_);
    int64_t count = 0;
    for (FactId other : db.FactsOf(pref_)) {
      if (store.args(other)[0] == fact.args()[0]) ++count;
    }
    return count;
  };
  int64_t denominator = 0;
  for (const Fact& fact : involved) denominator += weight(fact);
  OPCQA_CHECK_GT(denominator, 0) << "no violated atoms with weight";
  std::vector<Rational> probs;
  probs.reserve(extensions.size());
  for (const Operation& op : extensions) {
    if (!op.is_remove() || op.size() != 1) {
      probs.push_back(Rational(0));
      continue;
    }
    const Fact& alpha = op.facts().front();
    // ᾱ: the symmetric partner Pref(b,a) of α = Pref(a,b).
    Fact alpha_bar(pref_, {alpha.args()[1], alpha.args()[0]});
    probs.push_back(Rational(weight(alpha_bar), denominator));
  }
  return probs;
}

}  // namespace opcqa
