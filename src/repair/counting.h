// Repair-counting semantics — the "Equally Likely Repairs" direction of
// Section 6, after Greco & Molinaro [21]: the degree of certainty of a
// tuple is the *proportion of repairs* in which it is an answer, with
// every repair weighted equally (not by the hitting distribution).
//
// Two flavours:
//   * over operational repairs (the distinct successful leaf databases of
//     a repairing chain), and
//   * over an explicit repair list (e.g. classical ABC repairs),
// so the two uncertainty semantics can be compared side by side.

#ifndef OPCQA_REPAIR_COUNTING_H_
#define OPCQA_REPAIR_COUNTING_H_

#include <map>

#include "logic/query.h"
#include "repair/repair_enumerator.h"

namespace opcqa {

struct CountingOcaResult {
  /// tuple → (#repairs answering it) / (#repairs); only tuples with a
  /// positive count appear.
  std::map<Tuple, Rational> answers;
  size_t num_repairs = 0;

  Rational Proportion(const Tuple& tuple) const;
};

struct CountingOptions {
  /// Chain-walk knobs for the underlying enumeration — max_states,
  /// threads, and the transposition-table `memoize` switch all apply.
  EnumerationOptions enumeration;
};

/// Enumerates the chain (honoring `options.enumeration`, including
/// shared-suffix memoization) and applies the counting semantics to its
/// operational repairs.
CountingOcaResult CountingOca(const Database& db,
                              const ConstraintSet& constraints,
                              const ChainGenerator& generator,
                              const Query& query,
                              const CountingOptions& options = {});

/// Counting semantics over the operational repairs of an enumeration.
CountingOcaResult CountingOcaFromEnumeration(
    const EnumerationResult& enumeration, const Query& query);

/// Counting semantics over an explicit repair list.
CountingOcaResult CountingOcaFromRepairs(const std::vector<Database>& repairs,
                                         const Query& query);

/// Expected answer-set size E[|Q(D′)|] under the hitting distribution
/// (conditioned on success). By linearity this equals Σ_t CP(t) — the
/// "Scalar aggregation" bridge of Section 6's more-expressive-languages
/// direction.
Rational ExpectedAnswerCount(const EnumerationResult& enumeration,
                             const Query& query);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_COUNTING_H_
