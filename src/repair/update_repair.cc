#include "repair/update_repair.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "util/string_util.h"

namespace opcqa {
namespace {

/// Key-shape recognition for one EGD; returns the shared positions or an
/// error describing the mismatch.
Result<KeySpec2> RecognizeKeyEgd(const Schema& schema,
                                 const Constraint& egd) {
  const Conjunction& body = egd.body();
  if (body.size() != 2) {
    return Status::InvalidArgument(
        StrCat("key EGD needs exactly two body atoms: ",
               egd.ToString(schema)));
  }
  const Atom& first = body.atoms()[0];
  const Atom& second = body.atoms()[1];
  if (first.pred() != second.pred()) {
    return Status::InvalidArgument(
        StrCat("key EGD atoms must share a predicate: ",
               egd.ToString(schema)));
  }
  KeySpec2 spec;
  spec.pred = first.pred();
  bool eq_pair_found = false;
  for (size_t i = 0; i < first.arity(); ++i) {
    const Term& a = first.terms()[i];
    const Term& b = second.terms()[i];
    if (!a.is_var() || !b.is_var()) {
      return Status::InvalidArgument(
          StrCat("key EGD must be all-variable: ", egd.ToString(schema)));
    }
    if (a.var() == b.var()) {
      spec.key_positions.push_back(i);
    } else if ((a.var() == egd.eq_lhs() && b.var() == egd.eq_rhs()) ||
               (a.var() == egd.eq_rhs() && b.var() == egd.eq_lhs())) {
      eq_pair_found = true;
    }
  }
  if (!eq_pair_found || spec.key_positions.empty()) {
    return Status::InvalidArgument(
        StrCat("EGD is not key-shaped: ", egd.ToString(schema)));
  }
  return spec;
}

}  // namespace

Result<std::vector<KeySpec2>> ExtractKeyEgds(
    const Schema& schema, const ConstraintSet& constraints) {
  std::map<PredId, KeySpec2> by_pred;
  for (const Constraint& constraint : constraints) {
    if (!constraint.is_egd()) {
      return Status::InvalidArgument(
          StrCat("update repairing supports key EGDs only, got: ",
                 constraint.ToString(schema)));
    }
    Result<KeySpec2> spec = RecognizeKeyEgd(schema, constraint);
    if (!spec.ok()) return spec.status();
    auto [it, inserted] = by_pred.emplace(spec.value().pred, spec.value());
    if (!inserted) {
      // Several EGDs over one predicate (one per non-key attribute):
      // the key is the intersection of their shared positions.
      std::vector<size_t> merged;
      std::set_intersection(it->second.key_positions.begin(),
                            it->second.key_positions.end(),
                            spec.value().key_positions.begin(),
                            spec.value().key_positions.end(),
                            std::back_inserter(merged));
      if (merged.empty()) {
        return Status::InvalidArgument(
            "EGDs over one predicate disagree on the key positions");
      }
      it->second.key_positions = std::move(merged);
    }
  }
  std::vector<KeySpec2> keys;
  keys.reserve(by_pred.size());
  for (auto& [pred, spec] : by_pred) keys.push_back(std::move(spec));
  return keys;
}

UpdateRepairResult SampleUpdateRepair(
    const Database& db, const std::vector<KeySpec2>& keys, Rng* rng,
    const std::map<Fact, double>& trust) {
  OPCQA_CHECK(rng != nullptr);
  UpdateRepairResult result;
  result.db = Database(&db.schema());
  // Copy the relations without key constraints untouched.
  const FactStore& store = FactStore::Global();
  std::set<PredId> keyed;
  for (const KeySpec2& key : keys) keyed.insert(key.pred);
  for (FactId id : db.AllFactIds()) {
    if (keyed.count(store.pred(id)) == 0) result.db.InsertId(id);
  }
  for (const KeySpec2& key : keys) {
    // Group the facts of this relation by key value.
    std::map<std::vector<ConstId>, std::vector<FactId>> groups;
    for (FactId id : db.FactsOf(key.pred)) {
      const ConstId* args = store.args(id);
      std::vector<ConstId> key_value;
      key_value.reserve(key.key_positions.size());
      for (size_t position : key.key_positions) {
        key_value.push_back(args[position]);
      }
      groups[std::move(key_value)].push_back(id);
    }
    for (const auto& [key_value, members] : groups) {
      if (members.size() == 1) {
        result.db.InsertId(members.front());
        continue;
      }
      // Conflict: collapse to one member's value part, trust-weighted.
      std::vector<double> weights;
      weights.reserve(members.size());
      for (FactId member : members) {
        auto it = trust.find(store.ToFact(member));
        weights.push_back(it == trust.end() ? 1.0 : it->second);
      }
      size_t winner = rng->WeightedIndex(weights);
      result.db.InsertId(members[winner]);
      result.updates += members.size() - 1;
      ++result.groups_resolved;
    }
  }
  return result;
}

double UpdateOcaResult::Frequency(const Tuple& tuple) const {
  auto it = frequency.find(tuple);
  return it == frequency.end() ? 0.0 : it->second;
}

UpdateOcaResult EstimateUpdateOca(const Database& db,
                                  const std::vector<KeySpec2>& keys,
                                  const Query& query, size_t runs,
                                  uint64_t seed,
                                  const std::map<Fact, double>& trust) {
  OPCQA_CHECK_GT(runs, 0u);
  UpdateOcaResult result;
  result.runs = runs;
  Rng rng(seed);
  std::map<Tuple, size_t> counts;
  size_t total_updates = 0;
  for (size_t run = 0; run < runs; ++run) {
    UpdateRepairResult repair = SampleUpdateRepair(db, keys, &rng, trust);
    total_updates += repair.updates;
    for (const Tuple& tuple : query.Evaluate(repair.db)) ++counts[tuple];
  }
  result.mean_updates =
      static_cast<double>(total_updates) / static_cast<double>(runs);
  for (const auto& [tuple, count] : counts) {
    result.frequency[tuple] =
        static_cast<double>(count) / static_cast<double>(runs);
  }
  return result;
}

}  // namespace opcqa
