// The preference-scenario generator of Example 4.
//
// Setting: a binary relation Pref and the denial constraint
// Pref(x,y), Pref(y,x) → ⊥ ("preference is not symmetric"). The weight of
// an atom α = Pref(a,b) in D is w(α,D) = |{ Pref(a,·) ∈ D }| (how often a
// is preferred); VΣ(D) is the set of atoms involved in some violation; the
// importance of α is IΣ(α,D) = w(α,D) / Σ_{β ∈ VΣ(D)} w(β,D); and the
// probability of the single-atom deletion −α is the importance of its
// symmetric partner ᾱ:
//
//     P(s, s·−α) = IΣ(ᾱ, s(D)).
//
// Multi-atom deletions get probability 0. This generator reproduces the
// repairing Markov chain drawn in Section 3 of the paper exactly (edge
// probabilities 2/9, 3/9, 1/9, 3/9, then 1/3, 2/3, 2/4, 2/4, 1/4, 3/4,
// 2/5, 3/5).

#ifndef OPCQA_REPAIR_PREFERENCE_GENERATOR_H_
#define OPCQA_REPAIR_PREFERENCE_GENERATOR_H_

#include "repair/chain_generator.h"

namespace opcqa {

class PreferenceChainGenerator : public ChainGenerator {
 public:
  /// `pref` is the binary preference relation the constraint talks about.
  explicit PreferenceChainGenerator(PredId pref) : pref_(pref) {}

  std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const override;

  std::string name() const override { return "preference"; }
  bool supports_only_deletions() const override { return true; }
  // Weights read only w(·, s(D)) — the current database.
  bool history_independent() const override { return true; }
  // The distribution is fully determined by the Pref relation symbol.
  std::string cache_identity() const override {
    return "preference:" + std::to_string(pref_);
  }

 private:
  PredId pref_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_PREFERENCE_GENERATOR_H_
