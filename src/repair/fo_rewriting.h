// First-order rewriting of the Section 5 approximation — the "Query
// Rewriting" direction of Section 6 ("One can express additive error
// approximations by means of FO queries").
//
// For the deletion-sampling scheme, one sampled repair is D − R_del; a
// query over the repair can instead be evaluated over the *dirty* database
// extended with the deletion relations, by rewriting every atom R(t̄) into
// R(t̄) ∧ ¬R_del(t̄). The rewriting is independent of the data (its size
// depends only on Q), which is the point of the paper's remark: the
// per-round work is one FO query over D ∪ R_del.
//
// RewriteWithDeletionPredicates performs that atom-wise transformation on
// arbitrary FO formulas; MaterializeDeletions builds the extended database
// (schema widened with the R_del symbols).
//
// Caveat (active-domain semantics): Q(D − R_del) = Q'(D ∪ R_del) holds
// exactly for conjunctive queries and, more generally, domain-independent
// formulas. Under plain active-domain FO semantics the two sides can
// differ when quantifiers are sensitive to constants that occur *only* in
// deleted facts, because dom(D ∪ R_del) ⊇ dom(D − R_del). The property
// tests pin the equivalence for CQs and exhibit the divergence for a
// domain-dependent universal query.

#ifndef OPCQA_REPAIR_FO_REWRITING_H_
#define OPCQA_REPAIR_FO_REWRITING_H_

#include <map>
#include <memory>

#include "logic/query.h"

namespace opcqa {

/// Schema extension: for every relation in `preds`, a companion deletion
/// relation named "<name>__del" with the same arity. Returns the new
/// schema and the pred → del-pred mapping.
struct DeletionSchema {
  std::shared_ptr<Schema> schema;
  std::map<PredId, PredId> del_pred_of;
};

DeletionSchema ExtendSchemaWithDeletions(const Schema& schema);

/// Rewrites every atom R(t̄) with R ∈ dom(mapping) into
/// R(t̄) ∧ ¬R_del(t̄); other formula nodes are rebuilt recursively.
FormulaPtr RewriteWithDeletionPredicates(
    const FormulaPtr& formula, const std::map<PredId, PredId>& mapping);

/// Same transformation at the query level (head unchanged).
Query RewriteQueryWithDeletionPredicates(
    const Query& query, const std::map<PredId, PredId>& mapping);

/// Copies `db` into the extended schema and adds the facts of `deletions`
/// as R_del tuples. `deletions` maps original PredId → deleted facts (all
/// of that relation).
Database MaterializeDeletions(
    const Database& db, const DeletionSchema& extension,
    const std::map<PredId, std::vector<Fact>>& deletions);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_FO_REWRITING_H_
