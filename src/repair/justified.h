// Justified operations (Definition 3 / Proposition 1).
//
// An operation op is (D′,Σ)-justified when it eliminates some violation
// (κ,h) ∈ V(D′,Σ) and is "tight" for it:
//   * +F: no proper non-empty subset of F already fixes (κ,h) — for TGDs
//     this makes F a ⊊-minimal completion h′(ψ) − D′ over extensions h′ of
//     h into the base domain;
//   * −F: every proper non-empty subset of F also fixes (κ,h) — which holds
//     exactly when ∅ ≠ F ⊆ h(ϕ).
// EGDs and DCs admit no justified additions (adding facts cannot fix them).

#ifndef OPCQA_REPAIR_JUSTIFIED_H_
#define OPCQA_REPAIR_JUSTIFIED_H_

#include <vector>

#include "constraints/violation.h"
#include "relational/base.h"
#include "repair/operation.h"

namespace opcqa {

/// Enumerates every (D′,Σ)-justified operation, deduplicated and sorted.
/// `violations` must equal V(D′,Σ); `base` is B(D,Σ) of the *original*
/// database (additions draw constants from it).
std::vector<Operation> JustifiedOperations(const Database& db,
                                           const ConstraintSet& constraints,
                                           const ViolationSet& violations,
                                           const BaseSpec& base);

/// Justified deletions only (the support of deletion-only chains).
std::vector<Operation> JustifiedDeletions(const Database& db,
                                          const ConstraintSet& constraints,
                                          const ViolationSet& violations);

/// Decision version of Definition 3: is `op` (db,Σ)-justified? Used to
/// re-check Global Justification of Additions against D^s_{i-1} − H.
bool IsJustified(const Database& db, const ConstraintSet& constraints,
                 const BaseSpec& base, const Operation& op);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_JUSTIFIED_H_
