// Justified operations (Definition 3 / Proposition 1).
//
// An operation op is (D′,Σ)-justified when it eliminates some violation
// (κ,h) ∈ V(D′,Σ) and is "tight" for it:
//   * +F: no proper non-empty subset of F already fixes (κ,h) — for TGDs
//     this makes F a ⊊-minimal completion h′(ψ) − D′ over extensions h′ of
//     h into the base domain;
//   * −F: every proper non-empty subset of F also fixes (κ,h) — which holds
//     exactly when ∅ ≠ F ⊆ h(ϕ).
// EGDs and DCs admit no justified additions (adding facts cannot fix them).

#ifndef OPCQA_REPAIR_JUSTIFIED_H_
#define OPCQA_REPAIR_JUSTIFIED_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "constraints/violation.h"
#include "relational/base.h"
#include "repair/operation.h"

namespace opcqa {

/// Enumerates every (D′,Σ)-justified operation, deduplicated and sorted.
/// `violations` must equal V(D′,Σ); `base` is B(D,Σ) of the *original*
/// database (additions draw constants from it).
std::vector<Operation> JustifiedOperations(const Database& db,
                                           const ConstraintSet& constraints,
                                           const ViolationSet& violations,
                                           const BaseSpec& base);

/// Justified deletions only (the support of deletion-only chains).
std::vector<Operation> JustifiedDeletions(const Database& db,
                                          const ConstraintSet& constraints,
                                          const ViolationSet& violations);

/// Per-violation deletion-candidate index — the hot spot of denial-only
/// walks. JustifiedDeletions re-enumerates every violation's body-image
/// subsets and re-sorts them at *every* step of every chain; with
/// EGDs/DCs only, deletions are violation-monotone, so the violations of
/// any reachable state are a subset of V(D,Σ) and all candidate
/// operations can be materialized once per repair space. Each step then
/// reduces to merging pre-sorted rank lists and copying pre-built
/// Operations.
///
/// Built by RepairContext::Make for denial-only constraint sets and
/// shared (immutably) by every state, thread and walk over that context.
class DeletionCandidateIndex {
 public:
  /// Indexes every violation of `violations` (normally V(D,Σ)).
  static std::shared_ptr<const DeletionCandidateIndex> Build(
      const ConstraintSet& constraints, const ViolationSet& violations);

  /// Appends the justified deletions for `violations` to `ops` —
  /// byte-identical (same operations, same order) to
  /// JustifiedDeletions(db, constraints, violations). Returns false and
  /// leaves `ops` untouched when some violation is not indexed; the
  /// caller falls back to recomputing from scratch.
  bool AppendFor(const ViolationSet& violations,
                 std::vector<Operation>* ops) const;

  size_t num_violations() const { return ranks_.size(); }
  size_t num_candidates() const { return ops_.size(); }

 private:
  /// Distinct candidate deletions in fact-value lexicographic order (the
  /// order JustifiedDeletions emits).
  std::vector<Operation> ops_;
  /// Violation → sorted ranks into ops_ (its body-image subsets).
  std::map<Violation, std::vector<uint32_t>> ranks_;
};

/// Decision version of Definition 3: is `op` (db,Σ)-justified? Used to
/// re-check Global Justification of Additions against D^s_{i-1} − H.
bool IsJustified(const Database& db, const ConstraintSet& constraints,
                 const BaseSpec& base, const Operation& op);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_JUSTIFIED_H_
