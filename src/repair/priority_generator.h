// Priority-based chain generators — the "Preferences" direction of
// Section 6, after Staworko, Chomicki & Marcinkowski [34]: instead of
// numeric likelihoods, the user ranks operations; at every state the
// chain puts uniform mass on the *highest-ranked* valid extensions and
// zero on all others. Prioritized repairs are then exactly the repairs
// reachable through top-priority operations.

#ifndef OPCQA_REPAIR_PRIORITY_GENERATOR_H_
#define OPCQA_REPAIR_PRIORITY_GENERATOR_H_

#include <functional>
#include <map>

#include "repair/chain_generator.h"

namespace opcqa {

class PriorityChainGenerator : public ChainGenerator {
 public:
  /// Larger rank = more preferred. Ties share the mass uniformly.
  using RankFn =
      std::function<int64_t(const RepairingState&, const Operation&)>;

  /// Set `memoryless` when `rank` reads only the state's current database
  /// and the operation (see ChainGenerator::history_independent). A
  /// non-empty `cache_identity` asserts the cross-call contract of
  /// ChainGenerator::cache_identity for `rank` — only pass one when every
  /// parameter `rank` closes over is encoded in it (the named factories
  /// below do).
  PriorityChainGenerator(std::string name, RankFn rank,
                         bool deletions_only = false,
                         bool memoryless = false,
                         std::string cache_identity = std::string())
      : name_(std::move(name)), rank_(std::move(rank)),
        deletions_only_(deletions_only), memoryless_(memoryless),
        cache_identity_(std::move(cache_identity)) {}

  std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const override;

  std::string name() const override { return name_; }
  bool supports_only_deletions() const override { return deletions_only_; }
  bool history_independent() const override { return memoryless_; }
  std::string cache_identity() const override { return cache_identity_; }

  /// Rank = −|F| : prefer operations that change as few facts as possible
  /// (single-fact deletions beat pair deletions — the classical
  /// subset-repair flavour).
  static PriorityChainGenerator MinimalChange();

  /// Rank by a per-fact score: an operation's rank is the negated maximum
  /// score of the facts it deletes, so low-score (e.g. low-trust) facts
  /// are deleted first. Additions rank lowest.
  static PriorityChainGenerator DeleteLowestScoreFirst(
      std::map<Fact, int64_t> scores, int64_t default_score = 0);

 private:
  std::string name_;
  RankFn rank_;
  bool deletions_only_;
  bool memoryless_;
  std::string cache_identity_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_PRIORITY_GENERATOR_H_
