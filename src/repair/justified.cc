#include "repair/justified.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace opcqa {

namespace {

// All completions of a TGD violation (κ,h) w.r.t. db: the sets
// h′(head) − db over extensions h′ of h mapping existential variables into
// the base domain. Each completion is sorted/deduplicated.
std::set<std::vector<Fact>> CollectCompletions(const Database& db,
                                               const Constraint& tgd,
                                               const Assignment& h,
                                               const BaseSpec& base) {
  OPCQA_CHECK(tgd.is_tgd());
  std::set<std::vector<Fact>> completions;
  const std::vector<VarId>& exist = tgd.existential();
  const std::vector<ConstId>& domain = base.domain();
  Assignment extended = h;
  auto emit = [&]() {
    std::vector<Fact> missing;
    for (const Fact& fact : extended.ApplyAll(tgd.head())) {
      if (!db.Contains(fact)) missing.push_back(fact);
    }
    // missing is sorted because ApplyAll sorts and db filtering preserves
    // order.
    completions.insert(std::move(missing));
  };
  if (exist.empty()) {
    emit();
    return completions;
  }
  if (domain.empty()) return completions;
  std::vector<size_t> index(exist.size(), 0);
  for (;;) {
    for (size_t i = 0; i < exist.size(); ++i) {
      extended.Unbind(exist[i]);
      extended.Bind(exist[i], domain[index[i]]);
    }
    emit();
    size_t i = exist.size();
    bool done = true;
    while (i > 0) {
      --i;
      if (++index[i] < domain.size()) {
        done = false;
        break;
      }
      index[i] = 0;
    }
    if (done) break;
  }
  return completions;
}

// Keeps only the ⊊-minimal completions (Definition 3 tightness for +F).
std::vector<std::vector<Fact>> MinimalCompletions(
    const std::set<std::vector<Fact>>& completions) {
  auto is_subset = [](const std::vector<Fact>& a, const std::vector<Fact>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };
  std::vector<std::vector<Fact>> minimal;
  for (const auto& candidate : completions) {
    bool dominated = false;
    for (const auto& other : completions) {
      if (other != candidate && is_subset(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(candidate);
  }
  return minimal;
}

// Emits all non-empty subsets of `pool` (the body image of a violation) as
// deletion operations. Pool sizes are bounded by constraint body sizes.
void EmitDeletionSubsets(const std::vector<Fact>& pool,
                         std::set<Operation>* out) {
  OPCQA_CHECK_LE(pool.size(), 20u)
      << "violation body image too large for subset enumeration";
  size_t n = pool.size();
  for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
    std::vector<Fact> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) subset.push_back(pool[i]);
    }
    out->insert(Operation::Remove(std::move(subset)));
  }
}

}  // namespace

std::vector<Operation> JustifiedDeletions(const Database& db,
                                          const ConstraintSet& constraints,
                                          const ViolationSet& violations) {
  (void)db;
  std::set<Operation> ops;
  for (const Violation& v : violations) {
    EmitDeletionSubsets(BodyImage(constraints, v), &ops);
  }
  return std::vector<Operation>(ops.begin(), ops.end());
}

std::vector<Operation> JustifiedOperations(const Database& db,
                                           const ConstraintSet& constraints,
                                           const ViolationSet& violations,
                                           const BaseSpec& base) {
  std::set<Operation> ops;
  for (const Violation& v : violations) {
    EmitDeletionSubsets(BodyImage(constraints, v), &ops);
    const Constraint& c = constraints[v.constraint_index];
    if (!c.is_tgd()) continue;  // EGDs/DCs admit no justified additions
    std::set<std::vector<Fact>> completions =
        CollectCompletions(db, c, v.h, base);
    for (std::vector<Fact>& f : MinimalCompletions(completions)) {
      OPCQA_CHECK(!f.empty())
          << "empty completion for a violation — V(D,Σ) is stale";
      ops.insert(Operation::Add(std::move(f)));
    }
  }
  return std::vector<Operation>(ops.begin(), ops.end());
}

bool IsJustified(const Database& db, const ConstraintSet& constraints,
                 const BaseSpec& base, const Operation& op) {
  ViolationSet violations = ComputeViolations(db, constraints);
  if (op.is_remove()) {
    // Justified iff F ⊆ h(ϕ) for some current violation (Proposition 1;
    // the subset relation is equivalent to Definition 3 for our classes).
    for (const Violation& v : violations) {
      const std::vector<Fact> image = BodyImage(constraints, v);
      bool subset = std::all_of(
          op.facts().begin(), op.facts().end(), [&](const Fact& f) {
            return std::binary_search(image.begin(), image.end(), f);
          });
      if (subset) return true;
    }
    return false;
  }
  // Addition: F must be a ⊊-minimal completion of some TGD violation.
  for (const Violation& v : violations) {
    const Constraint& c = constraints[v.constraint_index];
    if (!c.is_tgd()) continue;
    std::set<std::vector<Fact>> completions =
        CollectCompletions(db, c, v.h, base);
    if (completions.count(op.facts()) == 0) continue;
    bool minimal = true;
    for (const auto& other : completions) {
      if (other != op.facts() && !other.empty() &&
          std::includes(op.facts().begin(), op.facts().end(), other.begin(),
                        other.end())) {
        minimal = false;
        break;
      }
    }
    if (minimal) return true;
  }
  return false;
}

}  // namespace opcqa
