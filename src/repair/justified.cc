#include "repair/justified.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace opcqa {

namespace {

// All completions of a TGD violation (κ,h) w.r.t. db: the sets
// h′(head) − db over extensions h′ of h mapping existential variables into
// the base domain. Each completion is sorted/deduplicated.
std::set<std::vector<Fact>> CollectCompletions(const Database& db,
                                               const Constraint& tgd,
                                               const Assignment& h,
                                               const BaseSpec& base) {
  OPCQA_CHECK(tgd.is_tgd());
  std::set<std::vector<Fact>> completions;
  const std::vector<VarId>& exist = tgd.existential();
  const std::vector<ConstId>& domain = base.domain();
  Assignment extended = h;
  auto emit = [&]() {
    std::vector<Fact> missing;
    for (const Fact& fact : extended.ApplyAll(tgd.head())) {
      if (!db.Contains(fact)) missing.push_back(fact);
    }
    // missing is sorted because ApplyAll sorts and db filtering preserves
    // order.
    completions.insert(std::move(missing));
  };
  if (exist.empty()) {
    emit();
    return completions;
  }
  if (domain.empty()) return completions;
  std::vector<size_t> index(exist.size(), 0);
  for (;;) {
    for (size_t i = 0; i < exist.size(); ++i) {
      extended.Unbind(exist[i]);
      extended.Bind(exist[i], domain[index[i]]);
    }
    emit();
    size_t i = exist.size();
    bool done = true;
    while (i > 0) {
      --i;
      if (++index[i] < domain.size()) {
        done = false;
        break;
      }
      index[i] = 0;
    }
    if (done) break;
  }
  return completions;
}

// Keeps only the ⊊-minimal completions (Definition 3 tightness for +F).
std::vector<std::vector<Fact>> MinimalCompletions(
    const std::set<std::vector<Fact>>& completions) {
  auto is_subset = [](const std::vector<Fact>& a, const std::vector<Fact>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };
  std::vector<std::vector<Fact>> minimal;
  for (const auto& candidate : completions) {
    bool dominated = false;
    for (const auto& other : completions) {
      if (other != candidate && is_subset(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(candidate);
  }
  return minimal;
}

// Lexicographic fact value order over id vectors: with each vector sorted,
// this is the order the equivalent std::set<Operation> would produce.
struct IdVectorValueLess {
  bool operator()(const std::vector<FactId>& a,
                  const std::vector<FactId>& b) const {
    const FactStore& store = FactStore::Global();
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (a[i] == b[i]) continue;
      return store.Less(a[i], b[i]);
    }
    return a.size() < b.size();
  }
};

using IdSubsetSet = std::set<std::vector<FactId>, IdVectorValueLess>;

// Emits all non-empty subsets of a violation's body image as interned id
// vectors (the deletion pools of Proposition 1). Pool sizes are bounded by
// constraint body sizes. Id-level because the support of deletion chains
// is rebuilt at every state of the enumerator and the Sample walk.
void EmitDeletionSubsets(const ConstraintSet& constraints, const Violation& v,
                         std::vector<FactId>* image, IdSubsetSet* out) {
  BodyImageIds(constraints, v, image);
  OPCQA_CHECK_LE(image->size(), 20u)
      << "violation body image too large for subset enumeration";
  size_t n = image->size();
  std::vector<FactId> subset;
  for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
    subset.clear();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) subset.push_back((*image)[i]);
    }
    out->insert(subset);
  }
}

// Materializes the deduplicated subsets as removal operations, appended in
// their (fact value lexicographic) order.
void AppendDeletions(const IdSubsetSet& subsets, std::vector<Operation>* ops) {
  ops->reserve(ops->size() + subsets.size());
  for (const std::vector<FactId>& ids : subsets) {
    ops->push_back(Operation::RemoveIds(ids));
  }
}

}  // namespace

std::vector<Operation> JustifiedDeletions(const Database& db,
                                          const ConstraintSet& constraints,
                                          const ViolationSet& violations) {
  (void)db;
  IdSubsetSet subsets;
  std::vector<FactId> image;
  for (const Violation& v : violations) {
    EmitDeletionSubsets(constraints, v, &image, &subsets);
  }
  std::vector<Operation> ops;
  AppendDeletions(subsets, &ops);
  return ops;
}

std::shared_ptr<const DeletionCandidateIndex> DeletionCandidateIndex::Build(
    const ConstraintSet& constraints, const ViolationSet& violations) {
  auto index = std::make_shared<DeletionCandidateIndex>();
  // Pass 1: the deduplicated candidate pool, in the emission order of
  // JustifiedDeletions (fact-value lexicographic).
  IdSubsetSet pool;
  std::vector<FactId> image;
  for (const Violation& v : violations) {
    EmitDeletionSubsets(constraints, v, &image, &pool);
  }
  std::map<std::vector<FactId>, uint32_t, IdVectorValueLess> rank_of;
  index->ops_.reserve(pool.size());
  for (const std::vector<FactId>& ids : pool) {
    rank_of.emplace(ids, static_cast<uint32_t>(index->ops_.size()));
    index->ops_.push_back(Operation::RemoveIds(ids));
  }
  // Pass 2: each violation's subsets as sorted ranks into the pool.
  for (const Violation& v : violations) {
    IdSubsetSet subsets;
    EmitDeletionSubsets(constraints, v, &image, &subsets);
    std::vector<uint32_t>& ranks = index->ranks_[v];
    ranks.reserve(subsets.size());
    for (const std::vector<FactId>& ids : subsets) {
      ranks.push_back(rank_of.at(ids));
    }
    std::sort(ranks.begin(), ranks.end());
  }
  return index;
}

bool DeletionCandidateIndex::AppendFor(const ViolationSet& violations,
                                       std::vector<Operation>* ops) const {
  std::vector<uint32_t> merged;
  for (const Violation& v : violations) {
    auto it = ranks_.find(v);
    if (it == ranks_.end()) return false;
    merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  ops->reserve(ops->size() + merged.size());
  for (uint32_t rank : merged) ops->push_back(ops_[rank]);
  return true;
}

std::vector<Operation> JustifiedOperations(const Database& db,
                                           const ConstraintSet& constraints,
                                           const ViolationSet& violations,
                                           const BaseSpec& base) {
  // Additions sort before removals (Operation::Kind order), so collecting
  // them separately and concatenating reproduces one sorted set.
  std::set<Operation> add_ops;
  IdSubsetSet del_subsets;
  std::vector<FactId> image;
  for (const Violation& v : violations) {
    EmitDeletionSubsets(constraints, v, &image, &del_subsets);
    const Constraint& c = constraints[v.constraint_index];
    if (!c.is_tgd()) continue;  // EGDs/DCs admit no justified additions
    std::set<std::vector<Fact>> completions =
        CollectCompletions(db, c, v.h, base);
    for (std::vector<Fact>& f : MinimalCompletions(completions)) {
      OPCQA_CHECK(!f.empty())
          << "empty completion for a violation — V(D,Σ) is stale";
      add_ops.insert(Operation::Add(std::move(f)));
    }
  }
  std::vector<Operation> ops(add_ops.begin(), add_ops.end());
  AppendDeletions(del_subsets, &ops);
  return ops;
}

bool IsJustified(const Database& db, const ConstraintSet& constraints,
                 const BaseSpec& base, const Operation& op) {
  ViolationSet violations = ComputeViolations(db, constraints);
  if (op.is_remove()) {
    // Justified iff F ⊆ h(ϕ) for some current violation (Proposition 1;
    // the subset relation is equivalent to Definition 3 for our classes).
    for (const Violation& v : violations) {
      const std::vector<Fact> image = BodyImage(constraints, v);
      bool subset = std::all_of(
          op.facts().begin(), op.facts().end(), [&](const Fact& f) {
            return std::binary_search(image.begin(), image.end(), f);
          });
      if (subset) return true;
    }
    return false;
  }
  // Addition: F must be a ⊊-minimal completion of some TGD violation.
  for (const Violation& v : violations) {
    const Constraint& c = constraints[v.constraint_index];
    if (!c.is_tgd()) continue;
    std::set<std::vector<Fact>> completions =
        CollectCompletions(db, c, v.h, base);
    if (completions.count(op.facts()) == 0) continue;
    bool minimal = true;
    for (const auto& other : completions) {
      if (other != op.facts() && !other.empty() &&
          std::includes(op.facts().begin(), op.facts().end(), other.begin(),
                        other.end())) {
        minimal = false;
        break;
      }
    }
    if (minimal) return true;
  }
  return false;
}

}  // namespace opcqa
