#include "repair/repair_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/canonical.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace opcqa {

namespace {

size_t StringHash(const std::string& text) {
  return std::hash<std::string>{}(text);
}

}  // namespace

RepairSpaceCache::RepairSpaceCache(RepairCacheOptions options)
    : options_(std::move(options)) {
  if (!options_.snapshot_dir.empty()) {
    storage::SnapshotStoreOptions store_options;
    store_options.directory = options_.snapshot_dir;
    store_options.max_disk_bytes = options_.max_disk_bytes;
    store_ = std::make_unique<storage::SnapshotStore>(store_options);
  }
}

bool RepairSpaceCache::DiskTierAvailable() {
  if (options_.breaker_failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  if (std::chrono::steady_clock::now() < breaker_open_until_) {
    breaker_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void RepairSpaceCache::NoteDiskFailure() {
  if (options_.breaker_failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  ++consecutive_disk_failures_;
  auto now = std::chrono::steady_clock::now();
  // Don't re-trip while already open (in-flight tasks may still report
  // failures); the consecutive count stays >= threshold, so the first
  // half-open failure after the cooldown trips again immediately.
  if (consecutive_disk_failures_ >= options_.breaker_failure_threshold &&
      now >= breaker_open_until_) {
    breaker_open_until_ =
        now + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    OPCQA_LOG(Warning) << "disk tier circuit breaker tripped after "
                       << consecutive_disk_failures_
                       << " consecutive failures; running memory-only for "
                       << options_.breaker_cooldown_ms << " ms";
  }
}

void RepairSpaceCache::NoteDiskSuccess() {
  if (options_.breaker_failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  consecutive_disk_failures_ = 0;
}

RepairSpaceCache::~RepairSpaceCache() {
  // Session close spills the live roots (the third spill trigger besides
  // LRU eviction and explicit Persist), then waits so no background task
  // outlives the store it writes through.
  if (store_ != nullptr && options_.spill_on_evict) Persist();
  DrainSpills();
}

std::shared_ptr<TranspositionTable> RepairSpaceCache::TableFor(
    const Database& db, const ConstraintSet& constraints,
    const ChainGenerator& generator, bool prune_zero_probability) {
  OPCQA_TRACE_SPAN("cache.probe");
  static obs::Histogram* const probe_latency =
      obs::MetricsRegistry::Global().GetHistogram("cache.probe_ms");
  obs::ScopedTimer timer(probe_latency);
  std::string identity = generator.cache_identity();
  if (identity.empty()) return nullptr;  // generator opted out of sharing
  std::string digest = storage::RenderConstraints(db.schema(), constraints);
  size_t fingerprint = HashCombine(
      HashCombine(HashCombine(db.Hash(), StringHash(digest)),
                  StringHash(identity)),
      prune_zero_probability ? 1u : 0u);

  auto find_live = [&]() -> std::shared_ptr<TranspositionTable> {
    for (Root& root : roots_) {
      if (root.fingerprint != fingerprint) continue;
      // Fingerprint match is only a candidate: verify every component so
      // hash collisions split into separate roots instead of aliasing.
      if (root.db == db && root.constraints_digest == digest &&
          root.generator_identity == identity &&
          root.prune == prune_zero_probability) {
        root.last_used = ++tick_;
        return root.table;
      }
    }
    return nullptr;
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::shared_ptr<TranspositionTable> table = find_live()) {
      return table;
    }
  }

  // In-memory miss: probe the disk tier outside the lock (decoding and
  // its verification are self-contained and may be slow).
  RestoredDisk restored;
  if (store_ != nullptr) {
    restored = RestoreFromDisk(db, constraints, digest, identity,
                               prune_zero_probability);
  }
  std::shared_ptr<TranspositionTable> table = restored.table;
  if (table == nullptr) {
    table = std::make_shared<TranspositionTable>(
        options_.max_entries_per_root, options_.max_bytes_per_root);
    table->SetRootShape(db.size(), db.schema().size());
    // Only persistent tables filter admissions: single-visit subtrees go
    // through a probational set instead of churning the eviction sweep
    // (repair/memo.h; scratch tables keep the always-admit behavior).
    // Serving caches opt out so a batch's first walk admits everything.
    if (options_.admission_filter) table->EnableAdmissionFilter();
  }

  std::vector<Root> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Re-check: another thread may have built this root while we probed
    // the disk; the resident table wins so concurrent queries share state
    // (and a losing restore is not counted — it served no query).
    if (std::shared_ptr<TranspositionTable> resident = find_live()) {
      return resident;
    }
    if (restored.table != nullptr) {
      restores_.fetch_add(1, std::memory_order_relaxed);
      restore_bytes_.fetch_add(restored.bytes, std::memory_order_relaxed);
      promotions_.fetch_add(1, std::memory_order_relaxed);
    }
    Root root;
    root.fingerprint = fingerprint;
    root.db_hash = db.Hash();
    root.db = db;
    root.constraints_digest = std::move(digest);
    root.generator_identity = std::move(identity);
    root.prune = prune_zero_probability;
    root.last_used = ++tick_;
    root.table = table;
    if (restored.table != nullptr) {
      root.base_on_disk = true;
      // Every restored entry was just stamped; the on-disk state covers
      // exactly them.
      root.spilled_through_seq = table->sequence();
      root.base_bytes = restored.base_bytes;
      root.log_bytes = restored.log_bytes;
      root.force_compaction = restored.dirty_tail;
    }
    roots_.push_back(std::move(root));
    // The memory tier may now be over budget (root count or bytes):
    // demote the lowest-retention roots to the disk tier so their chain
    // walks survive for a later query (or process). The spills run after
    // mutex_ drops — a task may execute inline on a pool worker and must
    // never see mutex_ held.
    CollectDemotionsLocked(&victims);
  }
  for (Root& victim : victims) {
    if (store_ != nullptr) {
      bool clean = victim.base_on_disk && !victim.force_compaction &&
                   victim.table->sequence() <= victim.spilled_through_seq;
      if (options_.spill_on_evict || clean) {
        demotions_.fetch_add(1, std::memory_order_relaxed);
      }
      if (options_.spill_on_evict) SpillAsync(std::move(victim));
    }
  }
  return table;
}

double RepairSpaceCache::RetentionScoreLocked(const Root& root) const {
  MemoStats stats = root.table->stats();
  bool clean_on_disk = store_ != nullptr && root.base_on_disk &&
                       !root.force_compaction &&
                       root.table->sequence() <= root.spilled_through_seq;
  // Loss if dropped now: a clean-on-disk root costs one restore (read +
  // decode, proportional to its resident footprint); anything else costs
  // re-walking everything the table has recorded (the uncompressed
  // payload total — a recompute-cost proxy), on top of that footprint.
  double loss = clean_on_disk
                    ? static_cast<double>(stats.bytes)
                    : static_cast<double>(stats.full_payload_bytes) +
                          static_cast<double>(stats.bytes);
  uint64_t age = tick_ - root.last_used;
  return loss / static_cast<double>(age + 1);
}

void RepairSpaceCache::CollectDemotionsLocked(std::vector<Root>* victims) {
  auto memory_bytes = [this] {
    size_t total = 0;
    for (const Root& root : roots_) total += root.table->stats().bytes;
    return total;
  };
  while (roots_.size() > 1) {
    bool over_roots =
        options_.max_roots > 0 && roots_.size() > options_.max_roots;
    bool over_memory = options_.max_memory_bytes > 0 &&
                       memory_bytes() > options_.max_memory_bytes;
    if (!over_roots && !over_memory) break;
    // The most recently touched root is never a victim — it is the one
    // the current query is about to use. Among the rest, drop the
    // cheapest to lose per tick of idleness. (With equal-size tables and
    // no disk tier this degenerates to plain LRU.)
    size_t newest = 0;
    for (size_t i = 1; i < roots_.size(); ++i) {
      if (roots_[i].last_used > roots_[newest].last_used) newest = i;
    }
    size_t victim = SIZE_MAX;
    double victim_score = 0.0;
    for (size_t i = 0; i < roots_.size(); ++i) {
      if (i == newest) continue;
      double score = RetentionScoreLocked(roots_[i]);
      if (victim == SIZE_MAX || score < victim_score) {
        victim = i;
        victim_score = score;
      }
    }
    if (victim == SIZE_MAX) break;
    victims->push_back(std::move(roots_[victim]));
    roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(victim));
  }
}

RepairSpaceCache::RestoredDisk RepairSpaceCache::RestoreFromDisk(
    const Database& db, const ConstraintSet& constraints,
    const std::string& digest, const std::string& identity, bool prune) {
  OPCQA_TRACE_SPAN("cache.restore");
  static obs::Histogram* const restore_latency =
      obs::MetricsRegistry::Global().GetHistogram("cache.restore_ms");
  obs::ScopedTimer timer(restore_latency);
  RestoredDisk out;
  if (!DiskTierAvailable()) return out;  // breaker open: memory-only
  storage::SnapshotIdentity expected;
  expected.db_text = db.ToString();
  expected.constraints_digest = digest;
  expected.generator_identity = identity;
  expected.prune = prune;
  uint64_t fingerprint = storage::StableFingerprint(expected);
  Result<std::string> bytes = [&]() -> Result<std::string> {
    OPCQA_FAILPOINT("repair_cache.restore");
    return store_->Get(fingerprint);
  }();
  if (!bytes.ok()) {
    // Absent snapshot = plain cold miss; an unreadable one counts as
    // rejected (and still just means cold compute).
    if (bytes.status().code() != StatusCode::kNotFound) {
      rejected_snapshots_.fetch_add(1, std::memory_order_relaxed);
      NoteDiskFailure();
    }
    return out;
  }
  Result<std::shared_ptr<TranspositionTable>> decoded =
      storage::DecodeSnapshot(*bytes, expected, db, constraints,
                              options_.max_entries_per_root,
                              options_.max_bytes_per_root);
  if (!decoded.ok()) {
    rejected_snapshots_.fetch_add(1, std::memory_order_relaxed);
    // Verification failure, not tier unavailability — but a second
    // strike quarantines the bytes so the miss path stops re-decoding
    // them (the store then answers NotFound, a clean cold miss).
    store_->MarkCorrupt(fingerprint);
    NoteDiskFailure();
    return out;
  }
  NoteDiskSuccess();
  out.table = *decoded;
  out.base_bytes = bytes->size();
  out.bytes = bytes->size();
  // Delta log on top of the base: each record's entries go through the
  // same re-interning and verification as base entries. A torn/corrupt
  // tail keeps the valid prefix (base + prefix, never cold) and forces
  // the next spill to compact; an unverifiable log *head* is ignored
  // wholesale — it never matches this root's identity, so its records
  // must not apply.
  Result<std::string> log = store_->GetLog(fingerprint);
  if (log.ok()) {
    storage::DeltaLogApplyResult applied;
    Status log_status = storage::ApplyDeltaLog(*log, expected, db,
                                               constraints, out.table.get(),
                                               &applied);
    if (!log_status.ok()) {
      rejected_snapshots_.fetch_add(1, std::memory_order_relaxed);
      out.dirty_tail = true;  // compact the dead log away on next spill
    } else {
      out.log_bytes = log->size();
      out.bytes += log->size();
      if (!applied.clean_tail) out.dirty_tail = true;
    }
  }
  if (options_.admission_filter) out.table->EnableAdmissionFilter();
  return out;
}

bool RepairSpaceCache::HasRoot(const Database& db,
                               const ConstraintSet& constraints,
                               const ChainGenerator& generator,
                               bool prune_zero_probability) const {
  std::string identity = generator.cache_identity();
  if (identity.empty()) return false;
  std::string digest = storage::RenderConstraints(db.schema(), constraints);
  size_t fingerprint = HashCombine(
      HashCombine(HashCombine(db.Hash(), StringHash(digest)),
                  StringHash(identity)),
      prune_zero_probability ? 1u : 0u);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Root& root : roots_) {
    if (root.fingerprint != fingerprint) continue;
    if (root.db == db && root.constraints_digest == digest &&
        root.generator_identity == identity &&
        root.prune == prune_zero_probability) {
      return true;
    }
  }
  return false;
}

void RepairSpaceCache::SpillAsync(Root root) {
  // Owns its copy of the root (callers move one in), so the live roots_
  // vector can mutate freely. The table itself is shared — the snapshot
  // is a consistent point-in-time view even while queries keep
  // inserting. Must be called WITHOUT mutex_ held: the task may run
  // inline on a pool worker and re-acquires mutex_ for the clean mark.
  Database db = std::move(root.db);
  std::string digest = std::move(root.constraints_digest);
  std::string identity = std::move(root.generator_identity);
  bool prune = root.prune;
  std::shared_ptr<TranspositionTable> table = std::move(root.table);
  bool base_on_disk = root.base_on_disk;
  uint64_t spilled_through = root.spilled_through_seq;
  size_t base_bytes = root.base_bytes;
  size_t log_bytes = root.log_bytes;
  bool force_compaction = root.force_compaction;
  auto task = [this, db = std::move(db), digest = std::move(digest),
               identity = std::move(identity), prune,
               table = std::move(table), base_on_disk, spilled_through,
               base_bytes, log_bytes, force_compaction]() {
    bool skip = base_on_disk && !force_compaction &&
                table->sequence() <= spilled_through;
    // On-disk state already current (restored or spilled, and untouched
    // since): rewriting it would only burn IO. And with the breaker
    // open, a spill would only burn a failure — the root stays dirty
    // and the next spill trigger retries once the tier recovers.
    if (!skip && !DiskTierAvailable()) skip = true;
    if (skip) {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      --pending_spills_;
      spill_cv_.notify_all();
      return;
    }
    {
      // Serialize same-cache spills end to end: with encode→write→clean-
      // mark atomic per spill, the on-disk state always corresponds to
      // the newest clean mark — two concurrent Persist() calls cannot
      // leave a stale snapshot behind a newer mark (which would make the
      // final close-time spill skip real entries). Spills are rare
      // (demotion / Persist / close), so the serialization never touches
      // query paths. Scoped: the unlock must happen BEFORE the pending
      // decrement below, after which the cache may be destroyed.
      std::lock_guard<std::mutex> io_lock(spill_io_mutex_);
      OPCQA_TRACE_SPAN("cache.spill");
      static obs::Histogram* const spill_latency =
          obs::MetricsRegistry::Global().GetHistogram("cache.spill_ms");
      obs::ScopedTimer timer(spill_latency);
      storage::SnapshotIdentity ident;
      ident.db_text = db.ToString();
      ident.constraints_digest = digest;
      ident.generator_identity = identity;
      ident.prune = prune;
      uint64_t fingerprint = storage::StableFingerprint(ident);
      // The spill covers every entry stamped up to here; later inserts
      // re-dirty the root (conservative if inserts land mid-encode: the
      // full encoder may include them, a rewrite is harmless).
      uint64_t upto = table->sequence();

      // Writeback helper: stamp the live root's residency bookkeeping
      // (SpillAsync's contract guarantees mutex_ is not held here).
      auto mark_live = [this, &table](auto mutate) {
        std::lock_guard<std::mutex> roots_lock(mutex_);
        for (Root& live : roots_) {
          if (live.table == table) {
            mutate(live);
            break;
          }
        }
      };

      // Delta path: base exists, log still healthy, and the new record
      // would keep the log under the compaction threshold. Everything
      // else rewrites the base (and drops the log) — the unified
      // "compaction" of the spill paths.
      bool delta_done = false;
      if (options_.delta_spill && base_on_disk && !force_compaction) {
        size_t record_entries = 0;
        std::string record = storage::EncodeDeltaRecord(
            db, *table, spilled_through, upto, &record_entries);
        if (record_entries == 0) {
          // The window holds nothing still resident (admitted entries
          // may have been evicted since): the on-disk state is as
          // current as it can be made.
          mark_live([&](Root& live) {
            live.spilled_through_seq = std::max(live.spilled_through_seq,
                                                upto);
          });
          delta_done = true;
        } else if (options_.log_compaction_ratio <= 0.0 ||
                   static_cast<double>(log_bytes + record.size()) >
                       options_.log_compaction_ratio *
                           static_cast<double>(base_bytes)) {
          // Log would outgrow the threshold: fall through to compaction.
        } else {
          Status appended = store_->AppendDelta(
              fingerprint, storage::EncodeDeltaLogHead(ident), record);
          if (appended.ok()) {
            NoteDiskSuccess();
            delta_appends_.fetch_add(1, std::memory_order_relaxed);
            compressed_bytes_.fetch_add(record.size(),
                                        std::memory_order_relaxed);
            size_t on_disk_log = store_->LogBytes(fingerprint);
            mark_live([&](Root& live) {
              live.spilled_through_seq = std::max(live.spilled_through_seq,
                                                  upto);
              live.log_bytes = on_disk_log;
            });
            delta_done = true;
          } else {
            // The log may now end mid-record. Readers tolerate that
            // (valid-prefix), but appending after a torn record would
            // bury live records behind garbage — so the next spill must
            // rewrite the base.
            failed_spills_.fetch_add(1, std::memory_order_relaxed);
            NoteDiskFailure();
            mark_live([](Root& live) { live.force_compaction = true; });
            delta_done = true;  // don't double-fail into a Put this round
          }
        }
      }

      if (!delta_done) {
        bool compacting = base_on_disk && (log_bytes > 0 || force_compaction);
        std::string bytes = storage::EncodeSnapshot(ident, db, *table);
        Status put = [&]() -> Status {
          if (compacting) OPCQA_FAILPOINT("repair_cache.compact");
          OPCQA_FAILPOINT("repair_cache.spill");
          return store_->Put(fingerprint, bytes);
        }();
        if (put.ok()) {
          // The fresh base supersedes every logged record; dropping the
          // log only after the base is durably published means a crash
          // between the two leaves base + stale log — whose records are
          // still true for this identity, merely redundant.
          store_->DeleteLog(fingerprint);
          NoteDiskSuccess();
          spills_.fetch_add(1, std::memory_order_relaxed);
          spill_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
          compressed_bytes_.fetch_add(bytes.size(),
                                      std::memory_order_relaxed);
          if (compacting) {
            compactions_.fetch_add(1, std::memory_order_relaxed);
          }
          mark_live([&](Root& live) {
            live.base_on_disk = true;
            live.spilled_through_seq = std::max(live.spilled_through_seq,
                                                upto);
            live.base_bytes = bytes.size();
            live.log_bytes = 0;
            live.force_compaction = false;
          });
        } else {
          // An unwritable/full snapshot directory must be visible to the
          // operator — "0 spills" alone cannot distinguish "nothing
          // dirty" from "every spill failing". A failed compaction
          // leaves the previous base (and log) untouched on disk —
          // Put is atomic and DeleteLog was never reached.
          failed_spills_.fetch_add(1, std::memory_order_relaxed);
          NoteDiskFailure();
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      --pending_spills_;
      // Notify under the lock: a drain-then-destroy caller may tear the
      // condvar down the instant the predicate holds.
      spill_cv_.notify_all();
    }
  };
  if (ThreadPool::OnWorkerThread()) {
    // Already on the pool: run inline instead of risking a starvation
    // deadlock between the enqueued spill and a DrainSpills() above us.
    {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      ++pending_spills_;
    }
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(spill_mutex_);
    ++pending_spills_;
  }
  ThreadPool::Global().Submit(std::move(task));
}

void RepairSpaceCache::DrainSpills() {
  std::unique_lock<std::mutex> lock(spill_mutex_);
  spill_cv_.wait(lock, [this] { return pending_spills_ == 0; });
}

void RepairSpaceCache::Persist() {
  if (store_ == nullptr) return;
  std::vector<Root> snapshot_roots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_roots.reserve(roots_.size());
    for (const Root& root : roots_) {
      // Clean roots (restored/spilled, untouched since) would be skipped
      // by the task anyway — don't even pay the Database copy.
      if (root.base_on_disk && !root.force_compaction &&
          root.table->sequence() <= root.spilled_through_seq) {
        continue;
      }
      snapshot_roots.push_back(root);
    }
  }
  // One copy per root total: the copies above are moved into the tasks.
  for (Root& root : snapshot_roots) SpillAsync(std::move(root));
  DrainSpills();
}

DiskTierStats RepairSpaceCache::disk_stats() const {
  DiskTierStats stats;
  stats.spills = spills_.load(std::memory_order_relaxed);
  stats.spill_bytes = spill_bytes_.load(std::memory_order_relaxed);
  stats.restores = restores_.load(std::memory_order_relaxed);
  stats.restore_bytes = restore_bytes_.load(std::memory_order_relaxed);
  stats.rejected_snapshots =
      rejected_snapshots_.load(std::memory_order_relaxed);
  stats.failed_spills = failed_spills_.load(std::memory_order_relaxed);
  stats.delta_appends = delta_appends_.load(std::memory_order_relaxed);
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  stats.compressed_bytes = compressed_bytes_.load(std::memory_order_relaxed);
  stats.promotions = promotions_.load(std::memory_order_relaxed);
  stats.demotions = demotions_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.breaker_skips = breaker_skips_.load(std::memory_order_relaxed);
  if (store_ != nullptr) {
    storage::SnapshotStoreStats store_stats = store_->Stats();
    stats.quarantined = store_stats.quarantined;
    stats.put_retries = store_stats.put_retries;
    stats.swept_temps = store_stats.swept_temps;
  }
  return stats;
}

size_t RepairSpaceCache::InvalidateDatabase(const Database& db) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (size_t i = roots_.size(); i-- > 0;) {
    if (roots_[i].db_hash == db.Hash() && roots_[i].db == db) {
      roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped;
    }
  }
  return dropped;
}

size_t RepairSpaceCache::InvalidateDatabaseHash(size_t db_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (size_t i = roots_.size(); i-- > 0;) {
    if (roots_[i].db_hash == db_hash) {
      roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped;
    }
  }
  return dropped;
}

void RepairSpaceCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  roots_.clear();
}

size_t RepairSpaceCache::roots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return roots_.size();
}

MemoStats RepairSpaceCache::TotalStats() const {
  std::vector<std::shared_ptr<TranspositionTable>> tables;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tables.reserve(roots_.size());
    for (const Root& root : roots_) tables.push_back(root.table);
  }
  MemoStats total;
  for (const auto& table : tables) {
    MemoStats stats = table->stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.collisions += stats.collisions;
    total.inserts += stats.inserts;
    total.rejected_full += stats.rejected_full;
    total.evictions += stats.evictions;
    total.admission_deferred += stats.admission_deferred;
    total.entries += stats.entries;
    total.bytes += stats.bytes;
    total.payload_bytes += stats.payload_bytes;
    total.full_payload_bytes += stats.full_payload_bytes;
  }
  return total;
}

}  // namespace opcqa
