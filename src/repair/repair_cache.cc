#include "repair/repair_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "storage/canonical.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace opcqa {

namespace {

size_t StringHash(const std::string& text) {
  return std::hash<std::string>{}(text);
}

}  // namespace

RepairSpaceCache::RepairSpaceCache(RepairCacheOptions options)
    : options_(std::move(options)) {
  if (!options_.snapshot_dir.empty()) {
    storage::SnapshotStoreOptions store_options;
    store_options.directory = options_.snapshot_dir;
    store_options.max_disk_bytes = options_.max_disk_bytes;
    store_ = std::make_unique<storage::SnapshotStore>(store_options);
  }
}

bool RepairSpaceCache::DiskTierAvailable() {
  if (options_.breaker_failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  if (std::chrono::steady_clock::now() < breaker_open_until_) {
    breaker_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void RepairSpaceCache::NoteDiskFailure() {
  if (options_.breaker_failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  ++consecutive_disk_failures_;
  auto now = std::chrono::steady_clock::now();
  // Don't re-trip while already open (in-flight tasks may still report
  // failures); the consecutive count stays >= threshold, so the first
  // half-open failure after the cooldown trips again immediately.
  if (consecutive_disk_failures_ >= options_.breaker_failure_threshold &&
      now >= breaker_open_until_) {
    breaker_open_until_ =
        now + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    OPCQA_LOG(Warning) << "disk tier circuit breaker tripped after "
                       << consecutive_disk_failures_
                       << " consecutive failures; running memory-only for "
                       << options_.breaker_cooldown_ms << " ms";
  }
}

void RepairSpaceCache::NoteDiskSuccess() {
  if (options_.breaker_failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  consecutive_disk_failures_ = 0;
}

RepairSpaceCache::~RepairSpaceCache() {
  // Session close spills the live roots (the third spill trigger besides
  // LRU eviction and explicit Persist), then waits so no background task
  // outlives the store it writes through.
  if (store_ != nullptr && options_.spill_on_evict) Persist();
  DrainSpills();
}

std::shared_ptr<TranspositionTable> RepairSpaceCache::TableFor(
    const Database& db, const ConstraintSet& constraints,
    const ChainGenerator& generator, bool prune_zero_probability) {
  std::string identity = generator.cache_identity();
  if (identity.empty()) return nullptr;  // generator opted out of sharing
  std::string digest = storage::RenderConstraints(db.schema(), constraints);
  size_t fingerprint = HashCombine(
      HashCombine(HashCombine(db.Hash(), StringHash(digest)),
                  StringHash(identity)),
      prune_zero_probability ? 1u : 0u);

  auto find_live = [&]() -> std::shared_ptr<TranspositionTable> {
    for (Root& root : roots_) {
      if (root.fingerprint != fingerprint) continue;
      // Fingerprint match is only a candidate: verify every component so
      // hash collisions split into separate roots instead of aliasing.
      if (root.db == db && root.constraints_digest == digest &&
          root.generator_identity == identity &&
          root.prune == prune_zero_probability) {
        root.last_used = ++tick_;
        return root.table;
      }
    }
    return nullptr;
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::shared_ptr<TranspositionTable> table = find_live()) {
      return table;
    }
  }

  // In-memory miss: probe the disk tier outside the lock (decoding and
  // its verification are self-contained and may be slow).
  std::shared_ptr<TranspositionTable> table;
  uint64_t clean_below_inserts = UINT64_MAX;
  size_t restored_bytes = 0;
  bool restored = false;
  if (store_ != nullptr) {
    table = RestoreFromDisk(db, constraints, digest, identity,
                            prune_zero_probability, &restored_bytes);
    if (table != nullptr) {
      restored = true;
      clean_below_inserts = table->stats().inserts;
    }
  }
  if (table == nullptr) {
    table = std::make_shared<TranspositionTable>(
        options_.max_entries_per_root, options_.max_bytes_per_root);
    table->SetRootShape(db.size(), db.schema().size());
    // Only persistent tables filter admissions: single-visit subtrees go
    // through a probational set instead of churning the eviction sweep
    // (repair/memo.h; scratch tables keep the always-admit behavior).
    // Serving caches opt out so a batch's first walk admits everything.
    if (options_.admission_filter) table->EnableAdmissionFilter();
  }

  Root evicted;
  bool spill_evicted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Re-check: another thread may have built this root while we probed
    // the disk; the resident table wins so concurrent queries share state
    // (and a losing restore is not counted — it served no query).
    if (std::shared_ptr<TranspositionTable> resident = find_live()) {
      return resident;
    }
    if (restored) {
      restores_.fetch_add(1, std::memory_order_relaxed);
      restore_bytes_.fetch_add(restored_bytes, std::memory_order_relaxed);
    }
    Root root;
    root.fingerprint = fingerprint;
    root.db_hash = db.Hash();
    root.db = db;
    root.constraints_digest = std::move(digest);
    root.generator_identity = std::move(identity);
    root.prune = prune_zero_probability;
    root.last_used = ++tick_;
    root.table = table;
    root.clean_below_inserts = clean_below_inserts;
    roots_.push_back(std::move(root));
    if (options_.max_roots > 0 && roots_.size() > options_.max_roots) {
      auto oldest = std::min_element(
          roots_.begin(), roots_.end(), [](const Root& a, const Root& b) {
            return a.last_used < b.last_used;
          });
      // The memory tier is full: hand the evicted root to the disk tier
      // so its chain walks survive for a later query (or process). The
      // spill itself runs after mutex_ drops — the task may execute
      // inline on a pool worker and must never see mutex_ held.
      if (store_ != nullptr && options_.spill_on_evict) {
        evicted = std::move(*oldest);
        spill_evicted = true;
      }
      roots_.erase(oldest);
    }
  }
  if (spill_evicted) SpillAsync(std::move(evicted));
  return table;
}

std::shared_ptr<TranspositionTable> RepairSpaceCache::RestoreFromDisk(
    const Database& db, const ConstraintSet& constraints,
    const std::string& digest, const std::string& identity, bool prune,
    size_t* restored_bytes) {
  if (!DiskTierAvailable()) return nullptr;  // breaker open: memory-only
  storage::SnapshotIdentity expected;
  expected.db_text = db.ToString();
  expected.constraints_digest = digest;
  expected.generator_identity = identity;
  expected.prune = prune;
  uint64_t fingerprint = storage::StableFingerprint(expected);
  Result<std::string> bytes = [&]() -> Result<std::string> {
    OPCQA_FAILPOINT("repair_cache.restore");
    return store_->Get(fingerprint);
  }();
  if (!bytes.ok()) {
    // Absent snapshot = plain cold miss; an unreadable one counts as
    // rejected (and still just means cold compute).
    if (bytes.status().code() != StatusCode::kNotFound) {
      rejected_snapshots_.fetch_add(1, std::memory_order_relaxed);
      NoteDiskFailure();
    }
    return nullptr;
  }
  Result<std::shared_ptr<TranspositionTable>> decoded =
      storage::DecodeSnapshot(*bytes, expected, db, constraints,
                              options_.max_entries_per_root,
                              options_.max_bytes_per_root);
  if (!decoded.ok()) {
    rejected_snapshots_.fetch_add(1, std::memory_order_relaxed);
    // Verification failure, not tier unavailability — but a second
    // strike quarantines the bytes so the miss path stops re-decoding
    // them (the store then answers NotFound, a clean cold miss).
    store_->MarkCorrupt(fingerprint);
    NoteDiskFailure();
    return nullptr;
  }
  NoteDiskSuccess();
  *restored_bytes = bytes->size();
  if (options_.admission_filter) (*decoded)->EnableAdmissionFilter();
  return *decoded;
}

bool RepairSpaceCache::HasRoot(const Database& db,
                               const ConstraintSet& constraints,
                               const ChainGenerator& generator,
                               bool prune_zero_probability) const {
  std::string identity = generator.cache_identity();
  if (identity.empty()) return false;
  std::string digest = storage::RenderConstraints(db.schema(), constraints);
  size_t fingerprint = HashCombine(
      HashCombine(HashCombine(db.Hash(), StringHash(digest)),
                  StringHash(identity)),
      prune_zero_probability ? 1u : 0u);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Root& root : roots_) {
    if (root.fingerprint != fingerprint) continue;
    if (root.db == db && root.constraints_digest == digest &&
        root.generator_identity == identity &&
        root.prune == prune_zero_probability) {
      return true;
    }
  }
  return false;
}

void RepairSpaceCache::SpillAsync(Root root) {
  // Owns its copy of the root (callers move one in), so the live roots_
  // vector can mutate freely. The table itself is shared — the snapshot
  // is a consistent point-in-time view even while queries keep
  // inserting. Must be called WITHOUT mutex_ held: the task may run
  // inline on a pool worker and re-acquires mutex_ for the clean mark.
  Database db = std::move(root.db);
  std::string digest = std::move(root.constraints_digest);
  std::string identity = std::move(root.generator_identity);
  bool prune = root.prune;
  std::shared_ptr<TranspositionTable> table = std::move(root.table);
  uint64_t clean_below = root.clean_below_inserts;
  auto task = [this, db = std::move(db), digest = std::move(digest),
               identity = std::move(identity), prune,
               table = std::move(table), clean_below]() {
    bool skip = clean_below != UINT64_MAX &&
                table->stats().inserts <= clean_below;
    // Snapshot already up to date (restored or spilled, and untouched
    // since): rewriting it would only burn IO. And with the breaker
    // open, a spill would only burn a failure — the root stays dirty
    // and the next spill trigger retries once the tier recovers.
    if (!skip && !DiskTierAvailable()) skip = true;
    if (skip) {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      --pending_spills_;
      spill_cv_.notify_all();
      return;
    }
    {
      // Serialize same-cache spills end to end: with encode→Put→clean-
      // mark atomic per spill, the snapshot on disk always corresponds
      // to the newest clean mark — two concurrent Persist() calls cannot
      // leave a stale snapshot behind a newer mark (which would make the
      // final close-time spill skip real entries). Spills are rare
      // (evict / Persist / close), so the serialization never touches
      // query paths. Scoped: the unlock must happen BEFORE the pending
      // decrement below, after which the cache may be destroyed.
      std::lock_guard<std::mutex> io_lock(spill_io_mutex_);
      storage::SnapshotIdentity ident;
      ident.db_text = db.ToString();
      ident.constraints_digest = digest;
      ident.generator_identity = identity;
      ident.prune = prune;
      // The spill covers at least the entries present now; later inserts
      // re-dirty the root (conservative if inserts land mid-encode).
      uint64_t inserts_at_encode = table->stats().inserts;
      std::string bytes = storage::EncodeSnapshot(ident, db, *table);
      Status put = [&]() -> Status {
        OPCQA_FAILPOINT("repair_cache.spill");
        return store_->Put(storage::StableFingerprint(ident), bytes);
      }();
      if (put.ok()) {
        NoteDiskSuccess();
        spills_.fetch_add(1, std::memory_order_relaxed);
        spill_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
        // Mark the live root clean so the next Persist()/destructor pass
        // skips an identical rewrite (e.g. explicit Persist then close).
        // SpillAsync's contract guarantees mutex_ is not held here.
        std::lock_guard<std::mutex> roots_lock(mutex_);
        for (Root& live : roots_) {
          if (live.table == table) {
            live.clean_below_inserts = inserts_at_encode;
            break;
          }
        }
      } else {
        // An unwritable/full snapshot directory must be visible to the
        // operator — "0 spills" alone cannot distinguish "nothing dirty"
        // from "every spill failing".
        failed_spills_.fetch_add(1, std::memory_order_relaxed);
        NoteDiskFailure();
      }
    }
    {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      --pending_spills_;
      // Notify under the lock: a drain-then-destroy caller may tear the
      // condvar down the instant the predicate holds.
      spill_cv_.notify_all();
    }
  };
  if (ThreadPool::OnWorkerThread()) {
    // Already on the pool: run inline instead of risking a starvation
    // deadlock between the enqueued spill and a DrainSpills() above us.
    {
      std::lock_guard<std::mutex> lock(spill_mutex_);
      ++pending_spills_;
    }
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(spill_mutex_);
    ++pending_spills_;
  }
  ThreadPool::Global().Submit(std::move(task));
}

void RepairSpaceCache::DrainSpills() {
  std::unique_lock<std::mutex> lock(spill_mutex_);
  spill_cv_.wait(lock, [this] { return pending_spills_ == 0; });
}

void RepairSpaceCache::Persist() {
  if (store_ == nullptr) return;
  std::vector<Root> snapshot_roots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_roots.reserve(roots_.size());
    for (const Root& root : roots_) {
      // Clean roots (restored/spilled, untouched since) would be skipped
      // by the task anyway — don't even pay the Database copy.
      if (root.clean_below_inserts != UINT64_MAX &&
          root.table->stats().inserts <= root.clean_below_inserts) {
        continue;
      }
      snapshot_roots.push_back(root);
    }
  }
  // One copy per root total: the copies above are moved into the tasks.
  for (Root& root : snapshot_roots) SpillAsync(std::move(root));
  DrainSpills();
}

DiskTierStats RepairSpaceCache::disk_stats() const {
  DiskTierStats stats;
  stats.spills = spills_.load(std::memory_order_relaxed);
  stats.spill_bytes = spill_bytes_.load(std::memory_order_relaxed);
  stats.restores = restores_.load(std::memory_order_relaxed);
  stats.restore_bytes = restore_bytes_.load(std::memory_order_relaxed);
  stats.rejected_snapshots =
      rejected_snapshots_.load(std::memory_order_relaxed);
  stats.failed_spills = failed_spills_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.breaker_skips = breaker_skips_.load(std::memory_order_relaxed);
  if (store_ != nullptr) {
    storage::SnapshotStoreStats store_stats = store_->Stats();
    stats.quarantined = store_stats.quarantined;
    stats.put_retries = store_stats.put_retries;
    stats.swept_temps = store_stats.swept_temps;
  }
  return stats;
}

size_t RepairSpaceCache::InvalidateDatabase(const Database& db) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (size_t i = roots_.size(); i-- > 0;) {
    if (roots_[i].db_hash == db.Hash() && roots_[i].db == db) {
      roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped;
    }
  }
  return dropped;
}

size_t RepairSpaceCache::InvalidateDatabaseHash(size_t db_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (size_t i = roots_.size(); i-- > 0;) {
    if (roots_[i].db_hash == db_hash) {
      roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped;
    }
  }
  return dropped;
}

void RepairSpaceCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  roots_.clear();
}

size_t RepairSpaceCache::roots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return roots_.size();
}

MemoStats RepairSpaceCache::TotalStats() const {
  std::vector<std::shared_ptr<TranspositionTable>> tables;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tables.reserve(roots_.size());
    for (const Root& root : roots_) tables.push_back(root.table);
  }
  MemoStats total;
  for (const auto& table : tables) {
    MemoStats stats = table->stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.collisions += stats.collisions;
    total.inserts += stats.inserts;
    total.rejected_full += stats.rejected_full;
    total.evictions += stats.evictions;
    total.admission_deferred += stats.admission_deferred;
    total.entries += stats.entries;
    total.bytes += stats.bytes;
    total.payload_bytes += stats.payload_bytes;
    total.full_payload_bytes += stats.full_payload_bytes;
  }
  return total;
}

}  // namespace opcqa
