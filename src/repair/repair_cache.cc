#include "repair/repair_cache.h"

#include <algorithm>

#include "util/hash.h"

namespace opcqa {

namespace {

/// Deterministic rendering of Σ for verified root identity. Rendering —
/// not hashing — keeps constraint-set equality collision-free: two
/// different Σ can share a fingerprint bucket but never a digest.
std::string ConstraintsDigest(const Schema& schema,
                              const ConstraintSet& constraints) {
  std::string digest;
  for (const Constraint& constraint : constraints) {
    digest += constraint.ToString(schema);
    digest += '\n';
  }
  return digest;
}

size_t StringHash(const std::string& text) {
  return std::hash<std::string>{}(text);
}

}  // namespace

RepairSpaceCache::RepairSpaceCache(RepairCacheOptions options)
    : options_(options) {}

std::shared_ptr<TranspositionTable> RepairSpaceCache::TableFor(
    const Database& db, const ConstraintSet& constraints,
    const ChainGenerator& generator, bool prune_zero_probability) {
  std::string identity = generator.cache_identity();
  if (identity.empty()) return nullptr;  // generator opted out of sharing
  std::string digest = ConstraintsDigest(db.schema(), constraints);
  size_t fingerprint = HashCombine(
      HashCombine(HashCombine(db.Hash(), StringHash(digest)),
                  StringHash(identity)),
      prune_zero_probability ? 1u : 0u);

  std::lock_guard<std::mutex> lock(mutex_);
  for (Root& root : roots_) {
    if (root.fingerprint != fingerprint) continue;
    // Fingerprint match is only a candidate: verify every component so
    // hash collisions split into separate roots instead of aliasing.
    if (root.db == db && root.constraints_digest == digest &&
        root.generator_identity == identity &&
        root.prune == prune_zero_probability) {
      root.last_used = ++tick_;
      return root.table;
    }
  }
  Root root;
  root.fingerprint = fingerprint;
  root.db_hash = db.Hash();
  root.db = db;
  root.constraints_digest = std::move(digest);
  root.generator_identity = std::move(identity);
  root.prune = prune_zero_probability;
  root.last_used = ++tick_;
  root.table = std::make_shared<TranspositionTable>(
      options_.max_entries_per_root, options_.max_bytes_per_root);
  root.table->SetRootShape(db.size(), db.schema().size());
  std::shared_ptr<TranspositionTable> table = root.table;
  roots_.push_back(std::move(root));
  if (options_.max_roots > 0 && roots_.size() > options_.max_roots) {
    auto oldest = std::min_element(
        roots_.begin(), roots_.end(), [](const Root& a, const Root& b) {
          return a.last_used < b.last_used;
        });
    roots_.erase(oldest);
  }
  return table;
}

size_t RepairSpaceCache::InvalidateDatabase(const Database& db) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (size_t i = roots_.size(); i-- > 0;) {
    if (roots_[i].db_hash == db.Hash() && roots_[i].db == db) {
      roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped;
    }
  }
  return dropped;
}

size_t RepairSpaceCache::InvalidateDatabaseHash(size_t db_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t dropped = 0;
  for (size_t i = roots_.size(); i-- > 0;) {
    if (roots_[i].db_hash == db_hash) {
      roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped;
    }
  }
  return dropped;
}

void RepairSpaceCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  roots_.clear();
}

size_t RepairSpaceCache::roots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return roots_.size();
}

MemoStats RepairSpaceCache::TotalStats() const {
  std::vector<std::shared_ptr<TranspositionTable>> tables;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tables.reserve(roots_.size());
    for (const Root& root : roots_) tables.push_back(root.table);
  }
  MemoStats total;
  for (const auto& table : tables) {
    MemoStats stats = table->stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.collisions += stats.collisions;
    total.inserts += stats.inserts;
    total.rejected_full += stats.rejected_full;
    total.evictions += stats.evictions;
    total.entries += stats.entries;
    total.bytes += stats.bytes;
    total.payload_bytes += stats.payload_bytes;
    total.full_payload_bytes += stats.full_payload_bytes;
  }
  return total;
}

}  // namespace opcqa
