#include "repair/memo.h"

#include <algorithm>
#include <tuple>

#include "util/hash.h"

namespace opcqa {

namespace {

/// Approximate heap footprint of a Violation inside a std::set: the
/// red-black node plus the assignment's binding vector.
size_t ViolationSetBytes(const ViolationSet& eliminated) {
  size_t bytes = 0;
  for (const Violation& violation : eliminated) {
    bytes += 48 /* set node overhead */ + sizeof(Violation) +
             violation.h.bindings().capacity() *
                 sizeof(std::pair<VarId, ConstId>);
  }
  return bytes;
}

/// Footprint of a full id-vector Database copy with `facts` facts over a
/// schema with `relations` relations — the PR-3 per-payload cost: the
/// object header (schema pointer, outer vector, size_, hash_), one inner
/// vector header per relation, and the ids themselves.
size_t DatabaseCopyBytes(size_t facts, size_t relations) {
  return 2 * sizeof(void*) + sizeof(std::vector<std::vector<FactId>>) +
         sizeof(std::vector<FactId>) * relations + facts * sizeof(FactId);
}

/// Footprint of a removed-id delta payload: one vector header + the ids.
size_t DeltaPayloadBytes(size_t removed) {
  return sizeof(std::vector<FactId>) + removed * sizeof(FactId);
}

bool RemovedEquals(const std::vector<FactId>& stored,
                   const std::set<FactId>& removed) {
  return stored.size() == removed.size() &&
         std::equal(stored.begin(), stored.end(), removed.begin());
}

bool RemovedEquals(const std::vector<FactId>& stored,
                   const std::vector<FactId>& removed) {
  return stored == removed;
}

}  // namespace

size_t StateKey::Combined() const {
  return HashCombine(db_hash, eliminated_hash);
}

StateKey KeyOf(const RepairingState& state) {
  return StateKey{state.db_hash(), state.eliminated_hash()};
}

bool MemoizationApplicable(const RepairContext& context,
                           const ChainGenerator& generator,
                           bool prune_zero_probability) {
  if (!generator.history_independent()) return false;
  if (context.denial_only) return true;  // every justified op is a deletion
  return generator.supports_only_deletions() && prune_zero_probability;
}

Database ReconstructRepair(const RepairingState& state,
                           const MemoOutcome::RepairShare& share) {
  Database repair = state.current();
  for (FactId id : share.removed) repair.EraseId(id);
  return repair;
}

MemoStats MemoStats::DeltaSince(const MemoStats& earlier) const {
  MemoStats delta = *this;
  delta.hits -= earlier.hits;
  delta.misses -= earlier.misses;
  delta.collisions -= earlier.collisions;
  delta.inserts -= earlier.inserts;
  delta.rejected_full -= earlier.rejected_full;
  delta.evictions -= earlier.evictions;
  delta.admission_deferred -= earlier.admission_deferred;
  // entries and the byte gauges stay point-in-time values.
  return delta;
}

TranspositionTable::TranspositionTable(size_t max_entries, size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {}

void TranspositionTable::SetRootShape(size_t root_facts,
                                      size_t num_relations) {
  root_facts_.store(root_facts, std::memory_order_relaxed);
  num_relations_.store(num_relations, std::memory_order_relaxed);
}

uint8_t TranspositionTable::CostTier(const MemoOutcome& outcome) {
  if (outcome.states >= 32768) return 3;
  if (outcome.states >= 1024) return 2;
  if (outcome.states >= 32) return 1;
  return 0;
}

size_t TranspositionTable::EntryBytes(const Entry& entry) {
  size_t bytes = sizeof(Entry) + 16 /* multimap node overhead */ +
                 entry.removed.capacity() * sizeof(FactId) +
                 ViolationSetBytes(entry.eliminated);
  const MemoOutcome& outcome = *entry.outcome;
  bytes += sizeof(MemoOutcome) +
           outcome.repairs.capacity() * sizeof(MemoOutcome::RepairShare);
  for (const MemoOutcome::RepairShare& share : outcome.repairs) {
    bytes += share.removed.capacity() * sizeof(FactId);
  }
  return bytes;
}

size_t TranspositionTable::PayloadBytes(const Entry& entry) {
  size_t bytes = DeltaPayloadBytes(entry.removed.size());
  for (const MemoOutcome::RepairShare& share : entry.outcome->repairs) {
    bytes += DeltaPayloadBytes(share.removed.size());
  }
  return bytes;
}

size_t TranspositionTable::FullPayloadBytes(const Entry& entry) const {
  // What the PR-3 representation stored where the deltas now are: a full
  // Database per entry key and per repair share. (Everything else — the
  // hash key, the eliminated set, the Rational masses — is identical in
  // both representations and not part of this comparison.) Entry database
  // size is |root| − |removed|; each repair removes `share.removed` more
  // facts below it.
  size_t root_facts = root_facts_.load(std::memory_order_relaxed);
  size_t relations = num_relations_.load(std::memory_order_relaxed);
  size_t entry_facts = root_facts > entry.removed.size()
                           ? root_facts - entry.removed.size()
                           : 0;
  size_t bytes = DatabaseCopyBytes(entry_facts, relations);
  for (const MemoOutcome::RepairShare& share : entry.outcome->repairs) {
    size_t repair_facts = entry_facts > share.removed.size()
                              ? entry_facts - share.removed.size()
                              : 0;
    bytes += DatabaseCopyBytes(repair_facts, relations);
  }
  return bytes;
}

std::shared_ptr<const MemoOutcome> TranspositionTable::Lookup(
    const StateKey& key, const std::set<FactId>& removed,
    const ViolationSet& eliminated) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [begin, end] = stripe.map.equal_range(key.Combined());
  bool collided = false;
  for (auto it = begin; it != end; ++it) {
    Entry& entry = it->second;
    if (entry.key == key && RemovedEquals(entry.removed, removed) &&
        entry.eliminated == eliminated) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      entry.chances = CostTier(*entry.outcome);  // second chance refresh
      return entry.outcome;
    }
    collided = true;
  }
  if (collided) collisions_.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (admission_filter_) {
    // A second miss under the same key is the admission signal: the state
    // is being re-reached, so the Insert that follows its re-walk will be
    // admitted. Saturate at 2 — further misses carry no information.
    size_t combined = key.Combined();
    auto it = stripe.probation.find(combined);
    if (it == stripe.probation.end()) {
      // Full: displace one arbitrary resident instead of clearing — a
      // wholesale wipe would repeatedly reset every miss count on roots
      // with more distinct states than the cap, starving admission of
      // exactly the big instances the cache exists for. Displacement
      // only ever delays one key's second sighting.
      if (stripe.probation.size() >= kProbationCap) {
        stripe.probation.erase(stripe.probation.begin());
      }
      stripe.probation.emplace(combined, 1);
    } else if (it->second < 2) {
      ++it->second;
    }
  }
  return nullptr;
}

void TranspositionTable::EvictUntilWithinBudget(Stripe& stripe) {
  size_t stripe_max_entries = std::max<size_t>(1, max_entries_ / kNumStripes);
  size_t stripe_max_bytes =
      max_bytes_ == 0 ? 0 : std::max<size_t>(1, max_bytes_ / kNumStripes);
  auto over_budget = [&]() {
    if (stripe.map.size() > stripe_max_entries) return true;
    return stripe_max_bytes != 0 && stripe.bytes > stripe_max_bytes;
  };
  // CLOCK-style sweep: zero-credit entries go, the rest pay one credit
  // per pass. Terminates because every full pass either evicts or
  // strictly decreases the total credits, and credits cannot rise during
  // the sweep (hits take the stripe lock).
  while (over_budget() && stripe.map.size() > 1) {
    for (auto it = stripe.map.begin();
         it != stripe.map.end() && over_budget();) {
      Entry& entry = it->second;
      if (entry.chances == 0) {
        stripe.bytes -= entry.entry_bytes;
        stripe.payload_bytes -= entry.payload_bytes;
        stripe.full_bytes -= entry.full_bytes;
        it = stripe.map.erase(it);
        entries_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (entry.chances > 0) --entry.chances;
        ++it;
      }
    }
  }
}

void TranspositionTable::EmplaceEntry(Stripe& stripe, Entry entry) {
  auto [begin, end] = stripe.map.equal_range(entry.key.Combined());
  for (auto it = begin; it != end; ++it) {
    const Entry& resident = it->second;
    if (resident.key == entry.key &&
        RemovedEquals(resident.removed, entry.removed) &&
        resident.eliminated == entry.eliminated) {
      return;  // first writer wins; outcomes are equal by soundness
    }
  }
  entry.chances = CostTier(*entry.outcome);
  entry.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  entry.entry_bytes = EntryBytes(entry);
  entry.payload_bytes = PayloadBytes(entry);
  entry.full_bytes = FullPayloadBytes(entry);
  size_t stripe_max_bytes =
      max_bytes_ == 0 ? 0 : std::max<size_t>(1, max_bytes_ / kNumStripes);
  if (stripe_max_bytes != 0 && entry.entry_bytes > stripe_max_bytes) {
    // The entry alone overflows its stripe's byte share: storing it would
    // just thrash the sweep. Count it as dropped.
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stripe.bytes += entry.entry_bytes;
  stripe.payload_bytes += entry.payload_bytes;
  stripe.full_bytes += entry.full_bytes;
  size_t combined = entry.key.Combined();
  stripe.map.emplace(combined, std::move(entry));
  entries_.fetch_add(1, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  EvictUntilWithinBudget(stripe);
}

void TranspositionTable::Insert(const StateKey& key,
                                const std::set<FactId>& removed,
                                ViolationSet eliminated,
                                std::shared_ptr<const MemoOutcome> outcome) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (admission_filter_) {
    auto it = stripe.probation.find(key.Combined());
    if (it == stripe.probation.end() || it->second < 2) {
      // The key has not missed twice: this subtree has only ever been
      // completed once, so storing it would just feed the eviction sweep.
      // A declined insert behaves exactly like an immediate eviction —
      // results stay byte-identical, a re-reach re-walks and re-offers.
      admission_deferred_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stripe.probation.erase(it);
  }
  Entry entry;
  entry.key = key;
  entry.removed.assign(removed.begin(), removed.end());
  entry.eliminated = std::move(eliminated);
  entry.outcome = std::move(outcome);
  EmplaceEntry(stripe, std::move(entry));
}

void TranspositionTable::RestoreEntry(
    const StateKey& key, std::vector<FactId> removed,
    ViolationSet eliminated, std::shared_ptr<const MemoOutcome> outcome) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  Entry entry;
  entry.key = key;
  entry.removed = std::move(removed);
  entry.eliminated = std::move(eliminated);
  entry.outcome = std::move(outcome);
  EmplaceEntry(stripe, std::move(entry));
}

void TranspositionTable::ForEach(
    const std::function<void(const std::vector<FactId>& removed,
                             const ViolationSet& eliminated,
                             const MemoOutcome& outcome)>& fn) const {
  for (const Stripe& stripe : stripes_) {
    // Copy the stripe's payloads out under the lock, run the (possibly
    // slow — snapshot serialization) callback outside it, so concurrent
    // Lookup/Insert wait microseconds, not the whole encode. Outcomes
    // are immutable shared_ptrs, so the copies stay consistent.
    std::vector<std::tuple<std::vector<FactId>, ViolationSet,
                           std::shared_ptr<const MemoOutcome>>>
        entries;
    {
      std::lock_guard<std::mutex> lock(stripe.mutex);
      entries.reserve(stripe.map.size());
      for (const auto& [combined, entry] : stripe.map) {
        entries.emplace_back(entry.removed, entry.eliminated, entry.outcome);
      }
    }
    for (const auto& [removed, eliminated, outcome] : entries) {
      fn(removed, eliminated, *outcome);
    }
  }
}

void TranspositionTable::ForEachSince(
    uint64_t since, uint64_t upto,
    const std::function<void(const std::vector<FactId>& removed,
                             const ViolationSet& eliminated,
                             const MemoOutcome& outcome)>& fn) const {
  for (const Stripe& stripe : stripes_) {
    std::vector<std::tuple<std::vector<FactId>, ViolationSet,
                           std::shared_ptr<const MemoOutcome>>>
        entries;
    {
      std::lock_guard<std::mutex> lock(stripe.mutex);
      for (const auto& [combined, entry] : stripe.map) {
        if (entry.sequence <= since || entry.sequence > upto) continue;
        entries.emplace_back(entry.removed, entry.eliminated, entry.outcome);
      }
    }
    for (const auto& [removed, eliminated, outcome] : entries) {
      fn(removed, eliminated, *outcome);
    }
  }
}

size_t TranspositionTable::size() const {
  return entries_.load(std::memory_order_relaxed);
}

MemoStats TranspositionTable::stats() const {
  MemoStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.collisions = collisions_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.admission_deferred =
      admission_deferred_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stats.bytes += stripe.bytes;
    stats.payload_bytes += stripe.payload_bytes;
    stats.full_payload_bytes += stripe.full_bytes;
  }
  return stats;
}

}  // namespace opcqa
