#include "repair/memo.h"

#include "util/hash.h"

namespace opcqa {

size_t StateKey::Combined() const {
  return HashCombine(db_hash, eliminated_hash);
}

StateKey KeyOf(const RepairingState& state) {
  return StateKey{state.db_hash(), state.eliminated_hash()};
}

bool MemoizationApplicable(const RepairContext& context,
                           const ChainGenerator& generator,
                           bool prune_zero_probability) {
  if (!generator.history_independent()) return false;
  if (context.denial_only) return true;  // every justified op is a deletion
  return generator.supports_only_deletions() && prune_zero_probability;
}

TranspositionTable::TranspositionTable(size_t max_entries)
    : max_entries_(max_entries) {}

std::shared_ptr<const MemoOutcome> TranspositionTable::Lookup(
    const StateKey& key, const Database& db, const ViolationSet& eliminated) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [begin, end] = stripe.map.equal_range(key.Combined());
  bool collided = false;
  for (auto it = begin; it != end; ++it) {
    const Entry& entry = it->second;
    if (entry.key == key && entry.db == db &&
        entry.eliminated == eliminated) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return entry.outcome;
    }
    collided = true;
  }
  if (collided) collisions_.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void TranspositionTable::Insert(const StateKey& key, const Database& db,
                                ViolationSet eliminated,
                                std::shared_ptr<const MemoOutcome> outcome) {
  if (entries_.load(std::memory_order_relaxed) >= max_entries_) {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto [begin, end] = stripe.map.equal_range(key.Combined());
  for (auto it = begin; it != end; ++it) {
    const Entry& entry = it->second;
    if (entry.key == key && entry.db == db &&
        entry.eliminated == eliminated) {
      return;  // first writer wins; outcomes are equal by soundness
    }
  }
  stripe.map.emplace(key.Combined(),
                     Entry{key, db, std::move(eliminated),
                           std::move(outcome)});
  entries_.fetch_add(1, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

size_t TranspositionTable::size() const {
  return entries_.load(std::memory_order_relaxed);
}

MemoStats TranspositionTable::stats() const {
  MemoStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.collisions = collisions_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace opcqa
