#include "repair/fo_rewriting.h"

#include "util/string_util.h"

namespace opcqa {

DeletionSchema ExtendSchemaWithDeletions(const Schema& schema) {
  DeletionSchema extension;
  extension.schema = std::make_shared<Schema>();
  // First the original relations, preserving their ids...
  for (PredId pred = 0; pred < schema.size(); ++pred) {
    PredId copied = extension.schema->AddRelation(schema.RelationName(pred),
                                                  schema.Arity(pred));
    OPCQA_CHECK_EQ(copied, pred);
  }
  // ...then the companion deletion relations.
  for (PredId pred = 0; pred < schema.size(); ++pred) {
    PredId del = extension.schema->AddRelation(
        StrCat(schema.RelationName(pred), "__del"), schema.Arity(pred));
    extension.del_pred_of[pred] = del;
  }
  return extension;
}

FormulaPtr RewriteWithDeletionPredicates(
    const FormulaPtr& formula, const std::map<PredId, PredId>& mapping) {
  OPCQA_CHECK(formula != nullptr);
  switch (formula->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
    case Formula::Kind::kEquals:
      return formula;
    case Formula::Kind::kAtom: {
      const Atom& atom = formula->atom();
      auto it = mapping.find(atom.pred());
      if (it == mapping.end()) return formula;
      Atom del_atom(it->second, atom.terms());
      return Formula::And(
          {formula, Formula::Not(Formula::MakeAtom(std::move(del_atom)))});
    }
    case Formula::Kind::kNot: {
      FormulaPtr child =
          RewriteWithDeletionPredicates(formula->child(), mapping);
      if (child == formula->child()) return formula;  // structural sharing
      return Formula::Not(std::move(child));
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(formula->children().size());
      bool changed = false;
      for (const FormulaPtr& child : formula->children()) {
        children.push_back(RewriteWithDeletionPredicates(child, mapping));
        changed = changed || children.back() != child;
      }
      if (!changed) return formula;
      return formula->kind() == Formula::Kind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      FormulaPtr child =
          RewriteWithDeletionPredicates(formula->child(), mapping);
      if (child == formula->child()) return formula;
      return formula->kind() == Formula::Kind::kExists
                 ? Formula::Exists(formula->quantified(), std::move(child))
                 : Formula::Forall(formula->quantified(), std::move(child));
    }
  }
  OPCQA_CHECK(false) << "unreachable formula kind";
  return formula;
}

Query RewriteQueryWithDeletionPredicates(
    const Query& query, const std::map<PredId, PredId>& mapping) {
  return Query(StrCat(query.name(), "_del_rewritten"), query.head(),
               RewriteWithDeletionPredicates(query.body(), mapping));
}

Database MaterializeDeletions(
    const Database& db, const DeletionSchema& extension,
    const std::map<PredId, std::vector<Fact>>& deletions) {
  Database out(extension.schema.get());
  for (FactId id : db.AllFactIds()) out.InsertId(id);
  for (const auto& [pred, facts] : deletions) {
    auto it = extension.del_pred_of.find(pred);
    OPCQA_CHECK(it != extension.del_pred_of.end())
        << "no deletion relation for predicate " << pred;
    for (const Fact& fact : facts) {
      OPCQA_CHECK_EQ(fact.pred(), pred);
      out.Insert(Fact(it->second, fact.args()));
    }
  }
  return out;
}

}  // namespace opcqa
