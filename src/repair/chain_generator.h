// Repairing Markov chain generators (Definition 5).
//
// A generator MΣ assigns, to every non-complete repairing sequence s, a
// probability distribution over its valid extensions (complete sequences
// are absorbing with P(s,s) = 1, handled by the framework). Probabilities
// are exact rationals; the framework CHECKs they are non-negative and sum
// to 1 at every state — the stochasticity condition of Definition 5.
//
// Built-in generators:
//   * UniformChainGenerator           — M^u of Proposition 4;
//   * DeletionOnlyUniformGenerator    — uniform over deletion extensions
//     (supports only deletions ⇒ non-failing, Proposition 8);
//   * PreferenceChainGenerator        — Example 4 (preference scenario);
//   * TrustChainGenerator             — Example 5 (data integration);
//   * LambdaChainGenerator            — any user-provided function.

#ifndef OPCQA_REPAIR_CHAIN_GENERATOR_H_
#define OPCQA_REPAIR_CHAIN_GENERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "repair/repairing_state.h"
#include "util/rational.h"

namespace opcqa {

class ChainGenerator {
 public:
  virtual ~ChainGenerator() = default;

  /// Distribution over `extensions` (same order) at state `state`.
  /// `extensions` is non-empty and equals state.ValidExtensions().
  /// Implementations may assign probability 0 to some extensions (pruning
  /// them from the chain) but the values must sum to exactly 1.
  virtual std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const = 0;

  /// Human-readable generator name for reports.
  virtual std::string name() const = 0;

  /// True when the generator never assigns positive probability to an
  /// addition (Proposition 8 then guarantees it is non-failing).
  virtual bool supports_only_deletions() const { return false; }

  /// True when Probabilities() is a function of the *state* only — the
  /// current database and its violations — and never of the path that
  /// reached it (sequence, depth, interleaving). Two repairing sequences
  /// hitting the same intermediate database then root identical subtrees,
  /// which is what makes transposition-table memoization of the repair
  /// space (repair/memo.h) sound. Defaults to false (conservative): a
  /// generator must opt in explicitly.
  virtual bool history_independent() const { return false; }

  /// Value identity for cross-query repair-space caching
  /// (repair/repair_cache.h). A non-empty string is a promise: any two
  /// generator instances returning the *same* string assign the same
  /// Probabilities() at every state, so memoized subtrees recorded under
  /// one may be replayed under the other. The string must therefore
  /// encode every parameter the distribution depends on (built-ins
  /// serialize theirs; see trust/priority generators). The default — the
  /// empty string — opts out: the generator's subtrees are never shared
  /// across calls, only within one (a scratch table), which is always
  /// sound.
  virtual std::string cache_identity() const { return std::string(); }
};

/// Validates and returns the distribution for a state: non-negative values
/// summing to exactly 1 (CHECK-fails otherwise, as the generator would not
/// define a Markov chain).
std::vector<Rational> CheckedProbabilities(
    const ChainGenerator& generator, const RepairingState& state,
    const std::vector<Operation>& extensions);

/// M^u: uniform over all valid extensions (Proposition 4's generator).
class UniformChainGenerator : public ChainGenerator {
 public:
  std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const override;
  std::string name() const override { return "uniform"; }
  bool history_independent() const override { return true; }
  std::string cache_identity() const override { return "uniform"; }
};

/// Uniform over deletion extensions only; addition extensions get 0.
/// Well-defined for every state because any violation can be fixed by
/// deleting (part of) its body image.
class DeletionOnlyUniformGenerator : public ChainGenerator {
 public:
  std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const override;
  std::string name() const override { return "uniform-deletions"; }
  bool supports_only_deletions() const override { return true; }
  bool history_independent() const override { return true; }
  std::string cache_identity() const override { return "uniform-deletions"; }
};

/// Wraps an arbitrary probability function.
class LambdaChainGenerator : public ChainGenerator {
 public:
  using Fn = std::function<std::vector<Rational>(
      const RepairingState&, const std::vector<Operation>&)>;

  /// Set `memoryless` when `fn` reads only the state's current database /
  /// violations (see ChainGenerator::history_independent). A non-empty
  /// `cache_identity` additionally asserts the cross-call contract of
  /// ChainGenerator::cache_identity for `fn` — only pass one when every
  /// parameter `fn` closes over is encoded in it.
  LambdaChainGenerator(std::string name, Fn fn, bool deletions_only = false,
                       bool memoryless = false,
                       std::string cache_identity = std::string())
      : name_(std::move(name)), fn_(std::move(fn)),
        deletions_only_(deletions_only), memoryless_(memoryless),
        cache_identity_(std::move(cache_identity)) {}

  std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const override {
    return fn_(state, extensions);
  }
  std::string name() const override { return name_; }
  bool supports_only_deletions() const override { return deletions_only_; }
  bool history_independent() const override { return memoryless_; }
  std::string cache_identity() const override { return cache_identity_; }

 private:
  std::string name_;
  Fn fn_;
  bool deletions_only_;
  bool memoryless_;
  std::string cache_identity_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_CHAIN_GENERATOR_H_
