#include "repair/localization.h"

#include <algorithm>
#include <map>

#include "repair/abc.h"
#include "util/logging.h"

namespace opcqa {

namespace {

// Union-find over fact indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<std::vector<Fact>> ConflictComponents(
    const Database& db, const ConstraintSet& constraints) {
  std::vector<Fact> facts = db.AllFacts();
  std::map<Fact, size_t> index;
  for (size_t i = 0; i < facts.size(); ++i) index[facts[i]] = i;
  UnionFind uf(facts.size());
  std::vector<bool> conflicting(facts.size(), false);
  for (const auto& edge : ConflictHypergraph(db, constraints)) {
    size_t first = index.at(edge.front());
    for (const Fact& fact : edge) {
      size_t i = index.at(fact);
      conflicting[i] = true;
      uf.Union(first, i);
    }
  }
  std::map<size_t, std::vector<Fact>> by_root;
  for (size_t i = 0; i < facts.size(); ++i) {
    if (conflicting[i]) by_root[uf.Find(i)].push_back(facts[i]);
  }
  std::vector<std::vector<Fact>> components;
  components.reserve(by_root.size());
  for (auto& [root, component] : by_root) {
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

Result<LocalizedRepairs> LocalizeAndEnumerate(
    const Database& db, const ConstraintSet& constraints,
    const ChainGenerator& generator, const EnumerationOptions& options) {
  if (!IsDenialOnly(constraints)) {
    return Status::InvalidArgument(
        "repair localization requires a denial-only (EGD/DC) constraint "
        "set: TGD additions couple components through the base");
  }
  LocalizedRepairs result;
  std::vector<std::vector<Fact>> components =
      ConflictComponents(db, constraints);
  // Untouched facts: everything outside every component.
  std::set<Fact> in_conflict;
  for (const auto& component : components) {
    in_conflict.insert(component.begin(), component.end());
  }
  result.untouched_ = Database(&db.schema());
  for (const Fact& fact : db.AllFacts()) {
    if (in_conflict.count(fact) == 0) result.untouched_.Insert(fact);
  }
  for (const auto& component : components) {
    LocalizedComponent localized;
    localized.sub_db = Database(&db.schema());
    for (const Fact& fact : component) localized.sub_db.Insert(fact);
    localized.distribution =
        EnumerateRepairs(localized.sub_db, constraints, generator, options);
    if (localized.distribution.truncated) {
      return Status::ResourceExhausted(
          "component enumeration exceeded the state budget");
    }
    result.components_.push_back(std::move(localized));
  }
  return result;
}

BigInt LocalizedRepairs::NumRepairCombinations() const {
  BigInt total(int64_t{1});
  for (const LocalizedComponent& component : components_) {
    total *= BigInt(
        static_cast<uint64_t>(component.distribution.repairs.size()));
  }
  return total;
}

Rational LocalizedRepairs::FactSurvivalProbability(const Fact& fact) const {
  if (untouched_.Contains(fact)) return Rational(1);
  for (const LocalizedComponent& component : components_) {
    if (!component.sub_db.Contains(fact)) continue;
    Rational mass;
    Rational total;
    for (const RepairInfo& info : component.distribution.repairs) {
      total += info.probability;
      if (info.repair.Contains(fact)) mass += info.probability;
    }
    OPCQA_CHECK(!total.is_zero())
        << "component with no successful repair (cannot happen for "
        << "denial-only constraints)";
    return mass / total;
  }
  return Rational(0);  // not a fact of D
}

Database LocalizedRepairs::SampleRepair(Rng* rng) const {
  Database repair = untouched_;
  for (const LocalizedComponent& component : components_) {
    std::vector<Rational> weights;
    weights.reserve(component.distribution.repairs.size());
    for (const RepairInfo& info : component.distribution.repairs) {
      weights.push_back(info.probability);
    }
    size_t pick = rng->WeightedIndex(weights);
    for (FactId id : component.distribution.repairs[pick].repair.AllFactIds()) {
      repair.InsertId(id);
    }
  }
  return repair;
}

size_t LocalizedRepairs::MaxComponentSize() const {
  size_t max_size = 0;
  for (const LocalizedComponent& component : components_) {
    max_size = std::max(max_size, component.sub_db.size());
  }
  return max_size;
}

}  // namespace opcqa
