// Update-based repairing — the "Different Types of Updates" direction of
// Section 6, after Wijsen, "Database repairing using updates" (TODS 2005).
//
// Deletion repairs throw information away: a key-violating group can lose
// *all* its tuples (the paper's Example 5 even argues for that option).
// Update repairs instead keep every key and resolve a conflict by
// rewriting the non-key attributes: each violating group collapses to the
// non-key value-part of one chosen member. Queries that only depend on key
// presence become certain under update repairs while deletion repairs can
// lose them — the observable contrast bench E16 measures.
//
// Scope: key constraints only (the classical update-repair setting). A
// key EGD is R(x̄) , R(x̄′) → x_i = x_i′ where the two body atoms share
// exactly the key positions; ExtractKeyEgds recognizes this shape and
// rejects anything else.

#ifndef OPCQA_REPAIR_UPDATE_REPAIR_H_
#define OPCQA_REPAIR_UPDATE_REPAIR_H_

#include <map>
#include <vector>

#include "constraints/constraint.h"
#include "logic/query.h"
#include "util/random.h"
#include "util/status.h"

namespace opcqa {

/// A recognized key constraint: `key_positions` determine the rest.
struct KeySpec2 {
  PredId pred = 0;
  std::vector<size_t> key_positions;

  auto operator<=>(const KeySpec2&) const = default;
};

/// Recognizes each EGD of Σ as a key constraint (two atoms over the same
/// predicate, all-variable, sharing exactly the key positions, equating a
/// non-shared pair). Multiple EGDs over one predicate merge into a single
/// KeySpec2 with the intersection of their shared positions. Returns
/// InvalidArgument when some constraint is not key-shaped (TGDs/DCs are
/// not update-repairable in this scheme).
Result<std::vector<KeySpec2>> ExtractKeyEgds(
    const Schema& schema, const ConstraintSet& constraints);

struct UpdateRepairResult {
  Database db;
  /// Number of facts whose value-part was rewritten.
  size_t updates = 0;
  /// Number of violating groups touched.
  size_t groups_resolved = 0;
};

/// Draws one update repair: every violating group collapses to the value
/// part of a uniformly chosen member (trust weights optional: a member is
/// chosen proportionally to `trust`, default weight 1). The result always
/// satisfies the key constraints and contains exactly one fact per key of
/// the original database — no key is ever lost.
UpdateRepairResult SampleUpdateRepair(
    const Database& db, const std::vector<KeySpec2>& keys, Rng* rng,
    const std::map<Fact, double>& trust = {});

/// Frequency estimates over `runs` sampled update repairs (the Section 5
/// loop, with updates instead of deletions).
struct UpdateOcaResult {
  std::map<Tuple, double> frequency;
  size_t runs = 0;
  double mean_updates = 0;

  double Frequency(const Tuple& tuple) const;
};

UpdateOcaResult EstimateUpdateOca(const Database& db,
                                  const std::vector<KeySpec2>& keys,
                                  const Query& query, size_t runs,
                                  uint64_t seed,
                                  const std::map<Fact, double>& trust = {});

}  // namespace opcqa

#endif  // OPCQA_REPAIR_UPDATE_REPAIR_H_
