// The data-integration trust generator of Example 5.
//
// Setting: key constraints (EGDs). Every fact α of the dirty database
// carries a trust level tr(α) ∈ [0,1] reflecting its source. For a
// violating pair {α,β} the relative trust is tr_{α|β} = tr(α)/(tr(α)+tr(β))
// and the weights of the three ways to fix the pair are
//
//     w_{α,β}(−α)     = tr_{β|α} · (1 − tr_{α|β} · tr_{β|α})
//     w_{α,β}(−β)     = tr_{α|β} · (1 − tr_{α|β} · tr_{β|α})
//     w_{α,β}(−{α,β}) = (1 − tr_{α|β}) · (1 − tr_{β|α})
//
// (each triple sums to 1). The chain probability of a deletion −F is the
// sum of the weights it earns from each violating pair, normalized by the
// number of violating pairs:
//
//     P(s, s·−F) = Σ_{{α,β} ∈ VΣ(s(D))} w_{α,β}(−F) / |VΣ(s(D))| .
//
// With tr = 1/2 everywhere this yields the introduction's 0.375 / 0.375 /
// 0.25 split between trusting one source and trusting neither.

#ifndef OPCQA_REPAIR_TRUST_GENERATOR_H_
#define OPCQA_REPAIR_TRUST_GENERATOR_H_

#include <map>

#include "repair/chain_generator.h"

namespace opcqa {

class TrustChainGenerator : public ChainGenerator {
 public:
  /// `trust` assigns every fact of the original database its trust level in
  /// (0,1]; facts without an entry default to `default_trust`.
  TrustChainGenerator(std::map<Fact, Rational> trust,
                      Rational default_trust = Rational(1, 2));

  std::vector<Rational> Probabilities(
      const RepairingState& state,
      const std::vector<Operation>& extensions) const override;

  std::string name() const override { return "trust"; }
  bool supports_only_deletions() const override { return true; }
  // Weights read the violating pairs of s(D) and the fixed trust map.
  bool history_independent() const override { return true; }
  // Serializes the full trust map (facts via their globally-interned
  // ids), so equal identities imply equal distributions, never merely
  // equal hashes.
  std::string cache_identity() const override;

  /// tr(α).
  Rational TrustOf(const Fact& fact) const;
  /// tr_{α|β} = tr(α) / (tr(α) + tr(β)).
  Rational RelativeTrust(const Fact& alpha, const Fact& beta) const;

 private:
  std::map<Fact, Rational> trust_;
  Rational default_trust_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_TRUST_GENERATOR_H_
