#include "repair/sampler.h"

#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace opcqa {

double ApproxOcaResult::Estimate(const Tuple& tuple) const {
  auto it = estimates.find(tuple);
  return it == estimates.end() ? 0.0 : it->second;
}

Sampler::Sampler(const Database& db, const ConstraintSet& constraints,
                 const ChainGenerator* generator, uint64_t seed,
                 SamplerOptions options)
    : context_(RepairContext::Make(db, constraints)),
      generator_(generator),
      seed_(seed),
      options_(options),
      rng_(seed) {
  OPCQA_CHECK(generator != nullptr);
}

size_t Sampler::NumSamples(double epsilon, double delta) {
  OPCQA_CHECK_GT(epsilon, 0.0);
  OPCQA_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

WalkResult Sampler::WalkWithRng(Rng* rng) const {
  RepairingState state(context_);
  WalkResult result;
  for (;;) {
    std::vector<Operation> extensions = state.ValidExtensions();
    if (extensions.empty()) break;  // absorbing
    std::vector<Rational> probs =
        CheckedProbabilities(*generator_, state, extensions);
    size_t pick = rng->WeightedIndex(probs);
    state.ApplyTrusted(extensions[pick]);
    ++result.steps;
  }
  result.successful = state.IsConsistent();
  result.final_db = state.Snapshot();
  return result;
}

WalkResult Sampler::RunWalk() { return WalkWithRng(&rng_); }

WalkResult Sampler::RunWalkAt(uint64_t walk_index) const {
  Rng rng = Rng::Stream(seed_, walk_index);
  return WalkWithRng(&rng);
}

namespace {

// Static chunking of [0, walks): chunk boundaries affect only which worker
// tallies which walks, never the walks themselves, so merged integer counts
// are identical for every chunk/thread count.
struct WalkRange {
  size_t begin;
  size_t end;
};

std::vector<WalkRange> ChunkWalks(size_t walks, size_t chunks) {
  chunks = std::max<size_t>(1, std::min(chunks, walks));
  std::vector<WalkRange> ranges;
  ranges.reserve(chunks);
  size_t base = walks / chunks, extra = walks % chunks, begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t size = base + (c < extra ? 1 : 0);
    ranges.push_back(WalkRange{begin, begin + size});
    begin += size;
  }
  return ranges;
}

}  // namespace

double Sampler::EstimateTuple(const Query& query, const Tuple& tuple,
                              double epsilon, double delta) {
  size_t n = NumSamples(epsilon, delta);
  uint64_t base = walk_cursor_;
  walk_cursor_ += n;
  size_t threads = options_.threads == 0 ? DefaultThreads() : options_.threads;
  std::vector<WalkRange> ranges = ChunkWalks(n, threads);
  std::vector<size_t> hits = ParallelMap<size_t>(
      ranges.size(), threads, [&](size_t c) {
        size_t chunk_hits = 0;
        for (size_t i = ranges[c].begin; i < ranges[c].end; ++i) {
          WalkResult walk = RunWalkAt(base + i);
          if (walk.successful && query.Contains(walk.final_db, tuple)) {
            ++chunk_hits;
          }
        }
        return chunk_hits;
      });
  size_t total = 0;
  for (size_t h : hits) total += h;
  return static_cast<double>(total) / static_cast<double>(n);
}

ApproxOcaResult Sampler::EstimateOcaWithWalks(const Query& query,
                                              size_t walks) {
  ApproxOcaResult result;
  result.walks = walks;
  struct Tally {
    std::map<Tuple, size_t> counts;
    size_t successful = 0;
    size_t failing = 0;
    size_t steps = 0;
  };
  uint64_t base = walk_cursor_;
  walk_cursor_ += walks;
  size_t threads = options_.threads == 0 ? DefaultThreads() : options_.threads;
  std::vector<WalkRange> ranges = ChunkWalks(walks, threads);
  std::vector<Tally> tallies = ParallelMap<Tally>(
      ranges.size(), threads, [&](size_t c) {
        Tally tally;
        for (size_t i = ranges[c].begin; i < ranges[c].end; ++i) {
          WalkResult walk = RunWalkAt(base + i);
          tally.steps += walk.steps;
          if (!walk.successful) {
            ++tally.failing;
            continue;
          }
          ++tally.successful;
          for (const Tuple& tuple : query.Evaluate(walk.final_db)) {
            ++tally.counts[tuple];
          }
        }
        return tally;
      });
  std::map<Tuple, size_t> counts;
  for (Tally& tally : tallies) {  // merged in chunk (index) order
    result.total_steps += tally.steps;
    result.successful_walks += tally.successful;
    result.failing_walks += tally.failing;
    for (const auto& [tuple, count] : tally.counts) counts[tuple] += count;
  }
  for (const auto& [tuple, count] : counts) {
    result.estimates[tuple] =
        static_cast<double>(count) / static_cast<double>(walks);
  }
  return result;
}

ApproxOcaResult Sampler::EstimateOca(const Query& query, double epsilon,
                                     double delta) {
  ApproxOcaResult result =
      EstimateOcaWithWalks(query, NumSamples(epsilon, delta));
  result.epsilon = epsilon;
  result.delta = delta;
  return result;
}

}  // namespace opcqa
