#include "repair/sampler.h"

#include <cmath>

#include "util/logging.h"

namespace opcqa {

double ApproxOcaResult::Estimate(const Tuple& tuple) const {
  auto it = estimates.find(tuple);
  return it == estimates.end() ? 0.0 : it->second;
}

Sampler::Sampler(const Database& db, const ConstraintSet& constraints,
                 const ChainGenerator* generator, uint64_t seed)
    : context_(RepairContext::Make(db, constraints)),
      generator_(generator),
      rng_(seed) {
  OPCQA_CHECK(generator != nullptr);
}

size_t Sampler::NumSamples(double epsilon, double delta) {
  OPCQA_CHECK_GT(epsilon, 0.0);
  OPCQA_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

WalkResult Sampler::RunWalk() {
  RepairingState state(context_);
  WalkResult result;
  for (;;) {
    std::vector<Operation> extensions = state.ValidExtensions();
    if (extensions.empty()) break;  // absorbing
    std::vector<Rational> probs =
        CheckedProbabilities(*generator_, state, extensions);
    size_t pick = rng_.WeightedIndex(probs);
    state.ApplyTrusted(extensions[pick]);
    ++result.steps;
  }
  result.successful = state.IsConsistent();
  result.final_db = state.Snapshot();
  return result;
}

double Sampler::EstimateTuple(const Query& query, const Tuple& tuple,
                              double epsilon, double delta) {
  size_t n = NumSamples(epsilon, delta);
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    WalkResult walk = RunWalk();
    if (walk.successful && query.Contains(walk.final_db, tuple)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

ApproxOcaResult Sampler::EstimateOcaWithWalks(const Query& query,
                                              size_t walks) {
  ApproxOcaResult result;
  result.walks = walks;
  std::map<Tuple, size_t> counts;
  for (size_t i = 0; i < walks; ++i) {
    WalkResult walk = RunWalk();
    result.total_steps += walk.steps;
    if (!walk.successful) {
      ++result.failing_walks;
      continue;
    }
    ++result.successful_walks;
    for (const Tuple& tuple : query.Evaluate(walk.final_db)) {
      ++counts[tuple];
    }
  }
  for (const auto& [tuple, count] : counts) {
    result.estimates[tuple] =
        static_cast<double>(count) / static_cast<double>(walks);
  }
  return result;
}

ApproxOcaResult Sampler::EstimateOca(const Query& query, double epsilon,
                                     double delta) {
  ApproxOcaResult result =
      EstimateOcaWithWalks(query, NumSamples(epsilon, delta));
  result.epsilon = epsilon;
  result.delta = delta;
  return result;
}

}  // namespace opcqa
