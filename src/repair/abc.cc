#include "repair/abc.h"

#include <algorithm>
#include <map>

#include "constraints/satisfaction.h"
#include "repair/repair_enumerator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

std::vector<std::vector<Fact>> ConflictHypergraph(
    const Database& db, const ConstraintSet& constraints) {
  std::set<std::vector<Fact>> edges;
  for (const Violation& v : ComputeViolations(db, constraints)) {
    edges.insert(BodyImage(constraints, v));
  }
  return std::vector<std::vector<Fact>>(edges.begin(), edges.end());
}

namespace {

// Enumerates all minimal hitting sets of `edges` by branching on the first
// unhit edge; collects candidates and filters non-minimal ones.
class HittingSetEnumerator {
 public:
  HittingSetEnumerator(const std::vector<std::vector<Fact>>& edges,
                       size_t budget)
      : edges_(edges), budget_(budget) {}

  Result<std::vector<std::set<Fact>>> Run() {
    Recurse();
    if (exhausted_) {
      return Status::ResourceExhausted(
          "hitting-set enumeration exceeded the candidate budget");
    }
    // Keep only ⊆-minimal candidates.
    std::vector<std::set<Fact>> minimal;
    for (const auto& h : candidates_) {
      bool dominated = false;
      for (const auto& other : candidates_) {
        if (other != h &&
            std::includes(h.begin(), h.end(), other.begin(), other.end())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) minimal.push_back(h);
    }
    return minimal;
  }

 private:
  void Recurse() {
    if (exhausted_) return;
    const std::vector<Fact>* unhit = nullptr;
    for (const auto& edge : edges_) {
      bool hit = std::any_of(edge.begin(), edge.end(), [&](const Fact& f) {
        return current_.count(f) > 0;
      });
      if (!hit) {
        unhit = &edge;
        break;
      }
    }
    if (unhit == nullptr) {
      if (candidates_.size() >= budget_) {
        exhausted_ = true;
        return;
      }
      candidates_.insert(current_);
      return;
    }
    for (const Fact& f : *unhit) {
      if (current_.count(f) > 0) continue;
      current_.insert(f);
      Recurse();
      current_.erase(f);
      if (exhausted_) return;
    }
  }

  const std::vector<std::vector<Fact>>& edges_;
  size_t budget_;
  std::set<Fact> current_;
  std::set<std::set<Fact>> candidates_;
  bool exhausted_ = false;
};

}  // namespace

Result<std::vector<Database>> AbcSubsetRepairs(const Database& db,
                                               const ConstraintSet& constraints,
                                               const AbcOptions& options) {
  OPCQA_CHECK(IsDenialOnly(constraints))
      << "AbcSubsetRepairs requires EGD/DC-only constraint sets";
  std::vector<std::vector<Fact>> edges = ConflictHypergraph(db, constraints);
  if (edges.empty()) return std::vector<Database>{db};
  HittingSetEnumerator enumerator(edges, options.max_candidates);
  Result<std::vector<std::set<Fact>>> hitting_sets = enumerator.Run();
  if (!hitting_sets.ok()) return hitting_sets.status();
  std::vector<Database> repairs;
  repairs.reserve(hitting_sets->size());
  for (const std::set<Fact>& h : *hitting_sets) {
    Database repair = db;
    for (const Fact& f : h) repair.Erase(f);
    repairs.push_back(std::move(repair));
  }
  std::sort(repairs.begin(), repairs.end());
  return repairs;
}

Result<std::vector<Database>> AbcRepairsBruteForce(
    const Database& db, const ConstraintSet& constraints,
    const AbcOptions& options) {
  BaseSpec base = BaseSpec::ForDatabase(db, ConstantsOf(constraints));
  std::vector<Fact> base_facts;
  bool complete = base.Enumerate(
      [&](const Fact& f) {
        base_facts.push_back(f);
        return true;
      },
      size_t{1} << options.max_base_facts);
  if (!complete || base_facts.size() > options.max_base_facts) {
    return Status::ResourceExhausted(
        StrCat("base has ", base_facts.size(), "+ facts; brute force is "
               "capped at ", options.max_base_facts));
  }
  size_t n = base_facts.size();
  // Collect consistent candidates with their symmetric differences.
  std::vector<std::pair<std::set<Fact>, Database>> consistent;  // (∆, D')
  for (size_t mask = 0; mask < (size_t{1} << n); ++mask) {
    Database candidate(&db.schema());
    for (size_t i = 0; i < n; ++i) {
      if (mask & (size_t{1} << i)) candidate.Insert(base_facts[i]);
    }
    if (!Satisfies(candidate, constraints)) continue;
    std::vector<Fact> only_d, only_c;
    db.SymmetricDifference(candidate, &only_d, &only_c);
    std::set<Fact> delta(only_d.begin(), only_d.end());
    delta.insert(only_c.begin(), only_c.end());
    consistent.emplace_back(std::move(delta), std::move(candidate));
    if (consistent.size() > options.max_candidates) {
      return Status::ResourceExhausted(
          "too many consistent candidates in brute-force ABC");
    }
  }
  // Keep ⊆-minimal symmetric differences.
  std::vector<Database> repairs;
  for (const auto& [delta, candidate] : consistent) {
    bool dominated = false;
    for (const auto& [other_delta, other] : consistent) {
      if (other_delta != delta &&
          std::includes(delta.begin(), delta.end(), other_delta.begin(),
                        other_delta.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) repairs.push_back(candidate);
  }
  std::sort(repairs.begin(), repairs.end());
  return repairs;
}

Result<std::vector<Database>> AbcRepairsViaChain(
    const Database& db, const ConstraintSet& constraints,
    const AbcOptions& options) {
  UniformChainGenerator uniform;
  EnumerationOptions enum_options;
  enum_options.max_states = options.max_candidates;
  enum_options.threads = options.threads;
  enum_options.memoize = options.memoize;
  enum_options.cache = options.cache;
  EnumerationResult result =
      EnumerateRepairs(db, constraints, uniform, enum_options);
  if (result.truncated) {
    return Status::ResourceExhausted(
        "uniform chain enumeration exceeded the candidate budget");
  }
  // Compute ∆ per distinct leaf database, keep the ⊆-minimal ones.
  std::vector<std::pair<std::set<Fact>, const Database*>> candidates;
  for (const RepairInfo& info : result.repairs) {
    std::vector<Fact> only_d, only_r;
    db.SymmetricDifference(info.repair, &only_d, &only_r);
    std::set<Fact> delta(only_d.begin(), only_d.end());
    delta.insert(only_r.begin(), only_r.end());
    candidates.emplace_back(std::move(delta), &info.repair);
  }
  std::vector<Database> repairs;
  for (const auto& [delta, repair] : candidates) {
    bool dominated = false;
    for (const auto& [other_delta, other] : candidates) {
      if (other_delta != delta &&
          std::includes(delta.begin(), delta.end(), other_delta.begin(),
                        other_delta.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) repairs.push_back(*repair);
  }
  std::sort(repairs.begin(), repairs.end());
  return repairs;
}

Result<std::vector<Database>> AbcRepairs(const Database& db,
                                         const ConstraintSet& constraints,
                                         const AbcOptions& options) {
  if (IsDenialOnly(constraints)) {
    return AbcSubsetRepairs(db, constraints, options);
  }
  BaseSpec base = BaseSpec::ForDatabase(db, ConstantsOf(constraints));
  if (base.Size() <= BigInt(static_cast<uint64_t>(options.max_base_facts))) {
    return AbcRepairsBruteForce(db, constraints, options);
  }
  return AbcRepairsViaChain(db, constraints, options);
}

std::set<Tuple> CertainAnswers(const std::vector<Database>& repairs,
                               const Query& query) {
  std::set<Tuple> certain;
  bool first = true;
  for (const Database& repair : repairs) {
    std::set<Tuple> answers = query.Evaluate(repair);
    if (first) {
      certain = std::move(answers);
      first = false;
      continue;
    }
    std::set<Tuple> intersection;
    std::set_intersection(certain.begin(), certain.end(), answers.begin(),
                          answers.end(),
                          std::inserter(intersection, intersection.begin()));
    certain = std::move(intersection);
    if (certain.empty()) break;
  }
  return certain;
}

}  // namespace opcqa
