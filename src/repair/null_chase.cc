#include "repair/null_chase.h"

#include <algorithm>

#include "constraints/satisfaction.h"
#include "util/string_util.h"

namespace opcqa {
namespace {

constexpr std::string_view kNullPrefix = "_:n";

/// Scans dom(D) for existing marked nulls and returns the next free index.
size_t FirstFreeNullIndex(const Database& db) {
  size_t next = 0;
  for (ConstId c : db.ActiveDomain()) {
    const std::string& name = ConstName(c);
    if (name.rfind(kNullPrefix, 0) != 0) continue;
    size_t index = 0;
    bool numeric = name.size() > kNullPrefix.size();
    for (size_t i = kNullPrefix.size(); i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      index = index * 10 + static_cast<size_t>(name[i] - '0');
    }
    if (numeric) next = std::max(next, index + 1);
  }
  return next;
}

/// Replaces every occurrence of `from` with `to` in the database.
Database SubstituteConstant(const Database& db, ConstId from, ConstId to) {
  Database out(&db.schema());
  for (const Fact& fact : db.AllFacts()) {
    std::vector<ConstId> args = fact.args();
    for (ConstId& arg : args) {
      if (arg == from) arg = to;
    }
    out.Insert(Fact(fact.pred(), std::move(args)));
  }
  return out;
}

/// Applies the homomorphism `h`, mapping existential variables through
/// `extension`, to the TGD head; returns the facts missing from `db`.
std::vector<Fact> HeadCompletion(const Constraint& tgd, const Assignment& h,
                                 const std::map<VarId, ConstId>& extension,
                                 const Database& db) {
  std::vector<Fact> missing;
  for (const Atom& atom : tgd.head().atoms()) {
    std::vector<ConstId> args;
    args.reserve(atom.arity());
    for (const Term& term : atom.terms()) {
      if (term.is_const()) {
        args.push_back(term.constant());
        continue;
      }
      std::optional<ConstId> frontier = h.Get(term.var());
      if (frontier.has_value()) {
        args.push_back(*frontier);
        continue;
      }
      auto fresh = extension.find(term.var());
      OPCQA_CHECK(fresh != extension.end())
          << "head variable neither frontier nor existential";
      args.push_back(fresh->second);
    }
    Fact fact(atom.pred(), std::move(args));
    if (!db.Contains(fact)) missing.push_back(std::move(fact));
  }
  return missing;
}

/// Uniformly samples a non-empty subset of `facts` (|facts| ≤ 16).
std::vector<Fact> SampleNonEmptySubset(const std::vector<Fact>& facts,
                                       Rng* rng, bool randomize) {
  OPCQA_CHECK(!facts.empty());
  OPCQA_CHECK_LE(facts.size(), 16u);
  uint64_t num_subsets = (uint64_t{1} << facts.size()) - 1;
  uint64_t mask =
      randomize ? rng->UniformInt(num_subsets) + 1 : uint64_t{1};
  std::vector<Fact> subset;
  for (size_t i = 0; i < facts.size(); ++i) {
    if (mask & (uint64_t{1} << i)) subset.push_back(facts[i]);
  }
  return subset;
}

}  // namespace

bool IsNullConstant(ConstId id) {
  return ConstName(id).rfind(kNullPrefix, 0) == 0;
}

bool HasNulls(const Database& db) {
  for (ConstId c : db.ActiveDomain()) {
    if (IsNullConstant(c)) return true;
  }
  return false;
}

Result<ChaseResult> ChaseRepair(const Database& db,
                                const ConstraintSet& constraints, Rng* rng,
                                const ChaseOptions& options) {
  if (options.randomize_choices && rng == nullptr) {
    return Status::InvalidArgument(
        "randomized chase requires an Rng instance");
  }
  ChaseResult result;
  result.db = db;
  size_t next_null = FirstFreeNullIndex(db);
  // No-resurrection bookkeeping (the chase analogue of the framework's
  // req2): ground facts deleted by a repair choice must not be re-inserted
  // by a later TGD step — such violations are resolved by deleting from
  // the body image instead. Without this, Σ like {R(x) → T(x), T(x) → ⊥}
  // would loop insert/delete forever.
  std::set<Fact> deleted_facts;

  while (true) {
    ViolationSet violations = ComputeViolations(result.db, constraints);
    if (violations.empty()) return result;
    if (++result.steps > options.max_steps) {
      return Status::ResourceExhausted(
          StrCat("chase exceeded ", options.max_steps, " steps"));
    }
    const Violation& violation = *violations.begin();
    const Constraint& constraint = constraints[violation.constraint_index];
    switch (constraint.kind()) {
      case Constraint::Kind::kTgd: {
        // Chase step: fresh marked nulls for the existential variables.
        std::map<VarId, ConstId> extension;
        for (VarId var : constraint.existential()) {
          extension[var] = Const(StrCat(kNullPrefix, next_null++));
        }
        std::vector<Fact> missing =
            HeadCompletion(constraint, violation.h, extension, result.db);
        OPCQA_CHECK(!missing.empty()) << "violation with satisfied head";
        // No resurrection: if a required fact containing no fresh null was
        // deleted earlier, fall back to deleting from the body image.
        bool resurrects = false;
        for (const Fact& fact : missing) {
          if (deleted_facts.count(fact) != 0) {
            resurrects = true;
            break;
          }
        }
        if (resurrects) {
          std::vector<Fact> image = BodyImage(constraints, violation);
          std::vector<Fact> doomed =
              SampleNonEmptySubset(image, rng, options.randomize_choices);
          for (const Fact& fact : doomed) {
            if (result.db.Erase(fact)) {
              ++result.facts_deleted;
              deleted_facts.insert(fact);
            }
          }
          break;
        }
        result.nulls_created += extension.size();
        for (const Fact& fact : missing) result.db.Insert(fact);
        break;
      }
      case Constraint::Kind::kEgd: {
        ConstId a = *violation.h.Get(constraint.eq_lhs());
        ConstId b = *violation.h.Get(constraint.eq_rhs());
        OPCQA_CHECK_NE(a, b) << "EGD violation with equal sides";
        if (IsNullConstant(a) || IsNullConstant(b)) {
          // Unify: promote the null to the other value (null-to-null
          // unifications collapse the later-created null).
          ConstId from = a, to = b;
          if (!IsNullConstant(a)) {
            from = b;
            to = a;
          } else if (IsNullConstant(b) && ConstName(b) > ConstName(a)) {
            from = b;
            to = a;
          }
          result.db = SubstituteConstant(result.db, from, to);
          ++result.nulls_unified;
          break;
        }
        [[fallthrough]];  // two distinct constants: repair by deletion
      }
      case Constraint::Kind::kDc: {
        std::vector<Fact> image = BodyImage(constraints, violation);
        std::vector<Fact> doomed =
            SampleNonEmptySubset(image, rng, options.randomize_choices);
        for (const Fact& fact : doomed) {
          if (result.db.Erase(fact)) {
            ++result.facts_deleted;
            deleted_facts.insert(fact);
          }
        }
        break;
      }
    }
  }
}

std::set<Tuple> NaiveAnswers(const Database& db_with_nulls,
                             const Query& query) {
  std::set<Tuple> answers;
  for (const Tuple& tuple : query.Evaluate(db_with_nulls)) {
    bool has_null = false;
    for (ConstId c : tuple) {
      if (IsNullConstant(c)) {
        has_null = true;
        break;
      }
    }
    if (!has_null) answers.insert(tuple);
  }
  return answers;
}

double ChaseOcaResult::Frequency(const Tuple& tuple) const {
  auto it = frequency.find(tuple);
  return it == frequency.end() ? 0.0 : it->second;
}

ChaseOcaResult EstimateChaseOca(const Database& db,
                                const ConstraintSet& constraints,
                                const Query& query, size_t runs,
                                uint64_t seed, const ChaseOptions& options) {
  OPCQA_CHECK_GT(runs, 0u);
  ChaseOcaResult result;
  result.runs = runs;
  Rng rng(seed);
  std::map<Tuple, size_t> counts;
  size_t total_steps = 0;
  size_t total_nulls = 0;
  for (size_t run = 0; run < runs; ++run) {
    Rng child = rng.Fork();
    Result<ChaseResult> chased =
        ChaseRepair(db, constraints, &child, options);
    if (!chased.ok()) {
      ++result.failed_runs;
      continue;
    }
    total_steps += chased.value().steps;
    total_nulls += chased.value().nulls_created;
    for (const Tuple& tuple : NaiveAnswers(chased.value().db, query)) {
      ++counts[tuple];
    }
  }
  size_t successful = runs - result.failed_runs;
  if (successful > 0) {
    result.mean_steps =
        static_cast<double>(total_steps) / static_cast<double>(successful);
    result.mean_nulls =
        static_cast<double>(total_nulls) / static_cast<double>(successful);
  }
  for (const auto& [tuple, count] : counts) {
    result.frequency[tuple] =
        static_cast<double>(count) / static_cast<double>(runs);
  }
  return result;
}

}  // namespace opcqa
