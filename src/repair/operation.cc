#include "repair/operation.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

Operation::Operation(Kind kind, std::vector<Fact> facts)
    : kind_(kind), facts_(std::move(facts)) {
  OPCQA_CHECK(!facts_.empty()) << "operations carry a non-empty set of facts";
  std::sort(facts_.begin(), facts_.end());
  facts_.erase(std::unique(facts_.begin(), facts_.end()), facts_.end());
  fact_ids_.reserve(facts_.size());
  for (const Fact& fact : facts_) fact_ids_.push_back(InternFact(fact));
}

Operation Operation::RemoveIds(const std::vector<FactId>& ids) {
  OPCQA_CHECK(!ids.empty()) << "operations carry a non-empty set of facts";
  const FactStore& store = FactStore::Global();
  Operation op;
  op.kind_ = Kind::kRemove;
  op.fact_ids_ = ids;
  op.facts_.reserve(ids.size());
  for (FactId id : ids) op.facts_.push_back(store.ToFact(id));
  return op;
}

void Operation::ApplyTo(Database* db) const {
  for (FactId id : fact_ids_) {
    if (kind_ == Kind::kAdd) {
      db->InsertId(id);
    } else {
      db->EraseId(id);
    }
  }
}

void Operation::RevertOn(Database* db) const {
  for (FactId id : fact_ids_) {
    if (kind_ == Kind::kAdd) {
      db->EraseId(id);
    } else {
      db->InsertId(id);
    }
  }
}

Database Operation::Apply(const Database& db) const {
  Database result = db;
  ApplyTo(&result);
  return result;
}

bool Operation::Touches(const Fact& fact) const {
  return std::binary_search(facts_.begin(), facts_.end(), fact);
}

bool Operation::Intersects(const std::vector<Fact>& facts) const {
  for (const Fact& fact : facts) {
    if (Touches(fact)) return true;
  }
  return false;
}

std::string Operation::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(facts_.size());
  for (const Fact& fact : facts_) parts.push_back(fact.ToString(schema));
  return StrCat(kind_ == Kind::kAdd ? "+" : "-", "{", Join(parts, ", "), "}");
}

std::string SequenceToString(const OperationSequence& sequence,
                             const Schema& schema) {
  if (sequence.empty()) return "ε";
  std::vector<std::string> parts;
  parts.reserve(sequence.size());
  for (const Operation& op : sequence) parts.push_back(op.ToString(schema));
  return Join(parts, " ; ");
}

}  // namespace opcqa
