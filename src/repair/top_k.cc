#include "repair/top_k.h"

#include <algorithm>
#include <map>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "repair/memo.h"
#include "repair/repair_cache.h"

namespace opcqa {
namespace {

/// A frontier entry. With transposition merging one entry can stand for
/// several paths reaching the same state: `probability` is their summed
/// path mass and `sequences` their count (the chain is a tree per path, so
/// the subtree below contributes `probability`-weighted mass and
/// `sequences`-many sequences per leaf — exactly what the merged paths
/// would have contributed separately, by distributivity of the exact
/// Rational arithmetic).
struct Pending {
  Rational probability;
  size_t sequences = 1;
  std::shared_ptr<RepairingState> state;
  /// Bumped on every merge; heap nodes carrying an older version are
  /// stale and skipped on pop (lazy deletion — std::priority_queue cannot
  /// increase a key in place).
  uint64_t version = 0;
  bool expanded = false;
};

/// What the heap orders: the entry's mass at push time plus the version
/// that validates it.
struct HeapNode {
  Rational probability;
  size_t pool_index;
  uint64_t version;
};

struct NodeLess {
  bool operator()(const HeapNode& a, const HeapNode& b) const {
    return a.probability < b.probability;  // max-heap on probability
  }
};

/// True when the top-k prefix of `masses` (sorted descending) can no
/// longer be displaced by `frontier_mass` of undiscovered/late mass.
bool TopKCertified(const std::vector<Rational>& masses, size_t k,
                   const Rational& frontier_mass) {
  if (masses.size() < k) return false;
  Rational kth = masses[k - 1];
  Rational challenger =
      masses.size() > k ? masses[k] : Rational(0);
  return kth >= challenger + frontier_mass;
}

}  // namespace

const RepairInfo& TopKResult::Map() const {
  OPCQA_CHECK(!repairs.empty()) << "no repair discovered";
  return repairs.front();
}

TopKResult TopKRepairs(const Database& db, const ConstraintSet& constraints,
                       const ChainGenerator& generator, size_t k,
                       const TopKOptions& options) {
  OPCQA_CHECK_GT(k, 0u);
  TopKResult result;
  auto context = RepairContext::Make(db, constraints);
  // Best-first expansion always skips zero-probability edges, so the
  // deletions-only-generator leg of the soundness gate applies.
  const bool merge =
      options.memoize &&
      MemoizationApplicable(*context, generator,
                            /*prune_zero_probability=*/true);
  // Persistent subtrees recorded by earlier enumerations over this root
  // (see TopKOptions::cache). Same soundness gate as merging.
  std::shared_ptr<TranspositionTable> table;
  if (merge && options.cache != nullptr) {
    table = options.cache->TableFor(db, constraints, generator,
                                    /*prune_zero_probability=*/true);
  }

  std::vector<Pending> pool;
  // Transposition index over unexpanded pool entries: combined state-key
  // hash → pool index, verified against the real id sets before merging.
  std::unordered_multimap<size_t, size_t> index;
  std::priority_queue<HeapNode, std::vector<HeapNode>, NodeLess> frontier;

  auto push_state = [&](std::shared_ptr<RepairingState> state,
                        Rational probability, size_t sequences) {
    if (merge) {
      StateKey key = KeyOf(*state);
      auto [begin, end] = index.equal_range(key.Combined());
      for (auto it = begin; it != end;) {
        Pending& candidate = pool[it->second];
        if (candidate.expanded) {
          // Lazily drop dead entries so a state reached k times after
          // expansion costs O(k) probes total, not O(k²).
          it = index.erase(it);
          continue;
        }
        if (KeyOf(*candidate.state) == key &&
            candidate.state->current() == state->current() &&
            candidate.state->eliminated() == state->eliminated()) {
          candidate.probability += probability;
          candidate.sequences += sequences;
          ++candidate.version;
          frontier.push(HeapNode{candidate.probability, it->second,
                                 candidate.version});
          return;
        }
        ++it;
      }
      index.emplace(key.Combined(), pool.size());
    }
    frontier.push(HeapNode{probability, pool.size(), 0});
    pool.push_back(Pending{std::move(probability), sequences,
                           std::move(state), 0, false});
  };

  push_state(std::make_shared<RepairingState>(context), Rational(1), 1);
  result.frontier_mass = Rational(1);

  std::map<Database, Rational> repair_mass;
  std::map<Database, size_t> repair_sequences;

  auto sorted_masses = [&]() {
    std::vector<Rational> masses;
    masses.reserve(repair_mass.size());
    for (const auto& [repair, mass] : repair_mass) masses.push_back(mass);
    std::sort(masses.begin(), masses.end(),
              [](const Rational& a, const Rational& b) { return b < a; });
    return masses;
  };

  // The certification test sorts all discovered repair masses; running it
  // on every expansion would dominate the search, so it is amortized.
  constexpr size_t kCertificationStride = 16;

  while (!frontier.empty()) {
    // Drop stale heap nodes (superseded by a merge) without touching any
    // counter — their mass lives on in the merged entry's current node.
    if (frontier.top().version != pool[frontier.top().pool_index].version ||
        pool[frontier.top().pool_index].expanded) {
      frontier.pop();
      continue;
    }
    if (result.states_expanded >= options.max_states) break;
    if (!options.frontier_epsilon.is_zero() &&
        result.frontier_mass <= options.frontier_epsilon) {
      break;
    }
    if (result.states_expanded % kCertificationStride == 0 &&
        TopKCertified(sorted_masses(), k, result.frontier_mass)) {
      result.certified = true;
      break;
    }

    Pending& top = pool[frontier.top().pool_index];
    frontier.pop();
    top.expanded = true;
    // Detach what the expansion needs — push_state may reallocate `pool`.
    const Rational probability = std::move(top.probability);
    const size_t sequences = top.sequences;
    const std::shared_ptr<RepairingState> state = std::move(top.state);
    ++result.states_expanded;
    result.frontier_mass -= probability;

    if (table != nullptr) {
      std::shared_ptr<const MemoOutcome> cached = table->Lookup(*state);
      if (cached != nullptr &&
          result.states_expanded + cached->states - 1 <=
              options.max_states) {
        // Fold the complete recorded subtree: exactly what expanding it
        // to exhaustion would have contributed, in one step. The entry's
        // root is already counted by ++states_expanded above.
        result.states_expanded += cached->states - 1;
        result.explored_success_mass += cached->success_mass * probability;
        result.explored_failing_mass += cached->failing_mass * probability;
        for (const MemoOutcome::RepairShare& share : cached->repairs) {
          Database repair = ReconstructRepair(*state, share);
          repair_mass[repair] += share.mass * probability;
          repair_sequences[repair] += share.num_sequences * sequences;
        }
        continue;
      }
    }

    std::vector<Operation> extensions = state->ValidExtensions();
    if (extensions.empty()) {
      // Absorbing state.
      if (state->IsConsistent()) {
        result.explored_success_mass += probability;
        // map operator[] freezes the key by copying on first insert.
        repair_mass[state->current()] += probability;
        repair_sequences[state->current()] += sequences;
      } else {
        result.explored_failing_mass += probability;
      }
      continue;
    }
    std::vector<Rational> probabilities =
        CheckedProbabilities(generator, *state, extensions);
    for (size_t i = 0; i < extensions.size(); ++i) {
      if (probabilities[i].is_zero()) continue;  // unreachable edge
      // Best-first order forces persistent per-entry states; Fork() drops
      // the parent's undo history, so the copy is as small as possible.
      auto child = std::make_shared<RepairingState>(state->Fork());
      child->ApplyTrusted(extensions[i]);
      Rational child_probability = probability * probabilities[i];
      result.frontier_mass += child_probability;
      push_state(std::move(child), std::move(child_probability), sequences);
    }
  }

  result.exact = frontier.empty();
  if (result.exact) {
    // Full enumeration: the prefix is final whatever k is.
    result.certified = true;
  } else if (!result.certified) {
    result.certified =
        TopKCertified(sorted_masses(), k, result.frontier_mass);
  }

  result.repairs.reserve(repair_mass.size());
  for (auto& [repair, mass] : repair_mass) {
    RepairInfo info;
    info.repair = repair;
    info.probability = mass;
    info.num_sequences = repair_sequences[repair];
    result.repairs.push_back(std::move(info));
  }
  std::sort(result.repairs.begin(), result.repairs.end(),
            [](const RepairInfo& a, const RepairInfo& b) {
              if (a.probability != b.probability) {
                return b.probability < a.probability;
              }
              return a.repair < b.repair;
            });
  return result;
}

}  // namespace opcqa
