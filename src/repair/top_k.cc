#include "repair/top_k.h"

#include <algorithm>
#include <map>
#include <memory>
#include <queue>

namespace opcqa {
namespace {

/// A frontier entry: a state with the probability of its unique path.
struct FrontierEntry {
  Rational probability;
  std::shared_ptr<RepairingState> state;
};

struct EntryLess {
  bool operator()(const FrontierEntry& a, const FrontierEntry& b) const {
    return a.probability < b.probability;  // max-heap on probability
  }
};

/// True when the top-k prefix of `masses` (sorted descending) can no
/// longer be displaced by `frontier_mass` of undiscovered/late mass.
bool TopKCertified(const std::vector<Rational>& masses, size_t k,
                   const Rational& frontier_mass) {
  if (masses.size() < k) return false;
  Rational kth = masses[k - 1];
  Rational challenger =
      masses.size() > k ? masses[k] : Rational(0);
  return kth >= challenger + frontier_mass;
}

}  // namespace

const RepairInfo& TopKResult::Map() const {
  OPCQA_CHECK(!repairs.empty()) << "no repair discovered";
  return repairs.front();
}

TopKResult TopKRepairs(const Database& db, const ConstraintSet& constraints,
                       const ChainGenerator& generator, size_t k,
                       const TopKOptions& options) {
  OPCQA_CHECK_GT(k, 0u);
  TopKResult result;
  auto context = RepairContext::Make(db, constraints);

  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>, EntryLess>
      frontier;
  frontier.push(FrontierEntry{
      Rational(1), std::make_shared<RepairingState>(context)});
  result.frontier_mass = Rational(1);

  std::map<Database, Rational> repair_mass;
  std::map<Database, size_t> repair_sequences;

  auto sorted_masses = [&]() {
    std::vector<Rational> masses;
    masses.reserve(repair_mass.size());
    for (const auto& [repair, mass] : repair_mass) masses.push_back(mass);
    std::sort(masses.begin(), masses.end(),
              [](const Rational& a, const Rational& b) { return b < a; });
    return masses;
  };

  // The certification test sorts all discovered repair masses; running it
  // on every expansion would dominate the search, so it is amortized.
  constexpr size_t kCertificationStride = 16;

  while (!frontier.empty()) {
    if (result.states_expanded >= options.max_states) break;
    if (!options.frontier_epsilon.is_zero() &&
        result.frontier_mass <= options.frontier_epsilon) {
      break;
    }
    if (result.states_expanded % kCertificationStride == 0 &&
        TopKCertified(sorted_masses(), k, result.frontier_mass)) {
      result.certified = true;
      break;
    }

    FrontierEntry entry = frontier.top();
    frontier.pop();
    ++result.states_expanded;
    result.frontier_mass -= entry.probability;

    std::vector<Operation> extensions = entry.state->ValidExtensions();
    if (extensions.empty()) {
      // Absorbing state.
      if (entry.state->IsConsistent()) {
        result.explored_success_mass += entry.probability;
        // map operator[] freezes the key by copying on first insert.
        repair_mass[entry.state->current()] += entry.probability;
        ++repair_sequences[entry.state->current()];
      } else {
        result.explored_failing_mass += entry.probability;
      }
      continue;
    }
    std::vector<Rational> probabilities =
        CheckedProbabilities(generator, *entry.state, extensions);
    for (size_t i = 0; i < extensions.size(); ++i) {
      if (probabilities[i].is_zero()) continue;  // unreachable edge
      // Best-first order forces persistent per-entry states; Fork() drops
      // the parent's undo history, so the copy is as small as possible.
      auto child = std::make_shared<RepairingState>(entry.state->Fork());
      child->ApplyTrusted(extensions[i]);
      Rational child_probability = entry.probability * probabilities[i];
      result.frontier_mass += child_probability;
      frontier.push(FrontierEntry{std::move(child_probability),
                                  std::move(child)});
    }
  }

  result.exact = frontier.empty();
  if (result.exact) {
    // Full enumeration: the prefix is final whatever k is.
    result.certified = true;
  } else if (!result.certified) {
    result.certified =
        TopKCertified(sorted_masses(), k, result.frontier_mass);
  }

  result.repairs.reserve(repair_mass.size());
  for (auto& [repair, mass] : repair_mass) {
    RepairInfo info;
    info.repair = repair;
    info.probability = mass;
    info.num_sequences = repair_sequences[repair];
    result.repairs.push_back(std::move(info));
  }
  std::sort(result.repairs.begin(), result.repairs.end(),
            [](const RepairInfo& a, const RepairInfo& b) {
              if (a.probability != b.probability) {
                return b.probability < a.probability;
              }
              return a.repair < b.repair;
            });
  return result;
}

}  // namespace opcqa
