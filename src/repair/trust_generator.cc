#include "repair/trust_generator.h"

#include <set>

#include "util/logging.h"

namespace opcqa {

TrustChainGenerator::TrustChainGenerator(std::map<Fact, Rational> trust,
                                         Rational default_trust)
    : trust_(std::move(trust)), default_trust_(std::move(default_trust)) {
  for (const auto& [fact, level] : trust_) {
    OPCQA_CHECK(!level.is_negative() && !level.is_zero() &&
                level <= Rational(1))
        << "trust levels must lie in (0,1]";
  }
  OPCQA_CHECK(!default_trust_.is_negative() && !default_trust_.is_zero() &&
              default_trust_ <= Rational(1));
}

std::string TrustChainGenerator::cache_identity() const {
  // Full serialization over globally-interned ids: equal strings imply
  // equal trust maps, so no two distinct distributions can ever share a
  // cached repair space.
  std::string identity = "trust:";
  for (const auto& [fact, level] : trust_) {
    identity += std::to_string(fact.pred());
    identity += '(';
    for (size_t i = 0; i < fact.args().size(); ++i) {
      if (i > 0) identity += ',';
      identity += std::to_string(fact.args()[i]);
    }
    identity += ")=";
    identity += level.ToString();
    identity += ';';
  }
  identity += "default=";
  identity += default_trust_.ToString();
  return identity;
}

Rational TrustChainGenerator::TrustOf(const Fact& fact) const {
  auto it = trust_.find(fact);
  return it == trust_.end() ? default_trust_ : it->second;
}

Rational TrustChainGenerator::RelativeTrust(const Fact& alpha,
                                            const Fact& beta) const {
  Rational ta = TrustOf(alpha);
  Rational tb = TrustOf(beta);
  return ta / (ta + tb);
}

std::vector<Rational> TrustChainGenerator::Probabilities(
    const RepairingState& state,
    const std::vector<Operation>& extensions) const {
  // VΣ(s(D)): the violating pairs {α,β}. Pairs are stored sorted.
  std::set<std::pair<Fact, Fact>> pairs;
  for (const Violation& v : state.violations()) {
    std::vector<Fact> image = BodyImage(state.context().constraints, v);
    OPCQA_CHECK_EQ(image.size(), 2u)
        << "TrustChainGenerator expects key-style violations over exactly "
        << "two facts";
    pairs.emplace(image[0], image[1]);
  }
  OPCQA_CHECK(!pairs.empty());
  Rational pair_count(static_cast<int64_t>(pairs.size()));

  auto pair_weight = [&](const Fact& alpha, const Fact& beta,
                         const Operation& op) -> Rational {
    if (!op.is_remove()) return Rational(0);
    Rational t_ab = RelativeTrust(alpha, beta);  // tr_{α|β}
    Rational t_ba = RelativeTrust(beta, alpha);  // tr_{β|α}
    Rational distrust_both = (Rational(1) - t_ab) * (Rational(1) - t_ba);
    Rational keep_one = Rational(1) - t_ab * t_ba;
    if (op.size() == 1) {
      const Fact& f = op.facts().front();
      if (f == alpha) return t_ba * keep_one;  // trust β, drop α
      if (f == beta) return t_ab * keep_one;   // trust α, drop β
      return Rational(0);
    }
    if (op.size() == 2 && op.facts()[0] == std::min(alpha, beta) &&
        op.facts()[1] == std::max(alpha, beta)) {
      return distrust_both;  // trust neither
    }
    return Rational(0);
  };

  std::vector<Rational> probs;
  probs.reserve(extensions.size());
  for (const Operation& op : extensions) {
    Rational weight;
    for (const auto& [alpha, beta] : pairs) {
      weight += pair_weight(alpha, beta, op);
    }
    probs.push_back(weight / pair_count);
  }
  return probs;
}

}  // namespace opcqa
