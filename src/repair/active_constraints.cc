#include "repair/active_constraints.h"

#include <algorithm>

#include "constraints/violation.h"

namespace opcqa {
namespace {

/// The violations of `state` that `op` fixes (eliminated by applying op).
std::vector<const Violation*> FixedViolations(const RepairingState& state,
                                              const Operation& op) {
  Database next = op.Apply(state.current());
  std::vector<const Violation*> fixed;
  for (const Violation& violation : state.violations()) {
    if (!IsViolation(next, state.context().constraints, violation)) {
      fixed.push_back(&violation);
    }
  }
  return fixed;
}

}  // namespace

Rational ActiveConstraintGenerator::WeightOf(const RepairingState& state,
                                             const Operation& op) const {
  const ConstraintSet& constraints = state.context().constraints;
  std::vector<const Violation*> fixed = FixedViolations(state, op);
  std::optional<Rational> best;
  for (const Violation* violation : fixed) {
    for (const ActionPreference& preference : preferences_) {
      if (preference.constraint_index != violation->constraint_index) {
        continue;
      }
      if (preference.kind != op.kind()) continue;
      if (preference.body_atom_index.has_value()) {
        if (!op.is_remove()) continue;
        const Constraint& constraint =
            constraints[violation->constraint_index];
        OPCQA_CHECK_LT(*preference.body_atom_index,
                       constraint.body().size());
        Fact target = violation->h.Apply(
            constraint.body().atoms()[*preference.body_atom_index]);
        if (op.facts() != std::vector<Fact>{target}) continue;
      }
      if (!best.has_value() || preference.weight > *best) {
        best = preference.weight;
      }
    }
  }
  return best.has_value() ? *best : default_weight_;
}

std::vector<Rational> ActiveConstraintGenerator::Probabilities(
    const RepairingState& state,
    const std::vector<Operation>& extensions) const {
  std::vector<Rational> weights;
  weights.reserve(extensions.size());
  Rational total(0);
  for (const Operation& op : extensions) {
    Rational weight = WeightOf(state, op);
    OPCQA_CHECK(!weight.is_negative()) << "negative preference weight";
    total += weight;
    weights.push_back(std::move(weight));
  }
  if (total.is_zero()) {
    // All extensions forbidden: fall back to uniform so the chain stays
    // stochastic (Definition 5 requires a distribution at every state).
    Rational uniform(1, static_cast<int64_t>(extensions.size()));
    return std::vector<Rational>(extensions.size(), uniform);
  }
  for (Rational& weight : weights) weight /= total;
  return weights;
}

}  // namespace opcqa
