#include "repair/chain_generator.h"

#include "util/logging.h"

namespace opcqa {

std::vector<Rational> CheckedProbabilities(
    const ChainGenerator& generator, const RepairingState& state,
    const std::vector<Operation>& extensions) {
  OPCQA_CHECK(!extensions.empty());
  std::vector<Rational> probs = generator.Probabilities(state, extensions);
  OPCQA_CHECK_EQ(probs.size(), extensions.size())
      << "generator '" << generator.name()
      << "' returned a distribution of the wrong size";
  // Accumulate the sum unreduced: Σ p_i == 1 iff num == den, and skipping
  // the per-step gcd reduction keeps this per-state stochasticity check off
  // the enumeration/sampling hot path.
  BigInt num(0);
  BigInt den(1);
  for (const Rational& p : probs) {
    OPCQA_CHECK(!p.is_negative())
        << "generator '" << generator.name() << "' returned probability "
        << p;
    num = num * p.denominator() + p.numerator() * den;
    den = den * p.denominator();
  }
  OPCQA_CHECK(num == den)
      << "generator '" << generator.name()
      << "' probabilities sum to " << Rational(num, den) << " at state "
      << state.ToString();
  return probs;
}

std::vector<Rational> UniformChainGenerator::Probabilities(
    const RepairingState& state,
    const std::vector<Operation>& extensions) const {
  (void)state;
  Rational share(1, static_cast<int64_t>(extensions.size()));
  return std::vector<Rational>(extensions.size(), share);
}

std::vector<Rational> DeletionOnlyUniformGenerator::Probabilities(
    const RepairingState& state,
    const std::vector<Operation>& extensions) const {
  size_t deletions = 0;
  for (const Operation& op : extensions) {
    if (op.is_remove()) ++deletions;
  }
  OPCQA_CHECK_GT(deletions, 0u)
      << "no deletion extension at a non-complete state: " << state.ToString();
  Rational share(1, static_cast<int64_t>(deletions));
  std::vector<Rational> probs;
  probs.reserve(extensions.size());
  for (const Operation& op : extensions) {
    probs.push_back(op.is_remove() ? share : Rational(0));
  }
  return probs;
}

}  // namespace opcqa
