// Repair localization — the "Optimizations" direction of Section 6, after
// Eiter, Fink, Greco & Lembo [15]: concentrate the repairing process on
// the parts of the database where violations occur.
//
// For denial-only constraint sets (EGDs + DCs), violations partition the
// conflicting facts into connected components of the conflict hypergraph;
// repairing chains of distinct components never interact (deletions are
// local, violations are monotone), so
//
//   [[D]]_MΣ  =  untouched-facts  ×  Π_i [[component_i]]_MΣ
//
// and the exact distribution is computed per component — cost exponential
// in the size of the *largest component* instead of the whole database.
//
// Exactness requires the generator to be *local*: the probabilities it
// assigns within a component must not depend on facts outside it. The
// uniform, deletion-only-uniform and trust generators are local; the
// preference generator of Example 4 is not (its weights count Pref(a,·)
// across the whole instance) — callers assert locality via the
// `generator_is_local` flag and the property tests cross-check the
// factored distribution against the monolithic enumerator.

#ifndef OPCQA_REPAIR_LOCALIZATION_H_
#define OPCQA_REPAIR_LOCALIZATION_H_

#include <vector>

#include "repair/repair_enumerator.h"
#include "util/random.h"

namespace opcqa {

struct LocalizedComponent {
  /// The sub-database of this conflict component.
  Database sub_db;
  /// Exact repair distribution of the component.
  EnumerationResult distribution;
};

class LocalizedRepairs {
 public:
  const Database& untouched() const { return untouched_; }
  const std::vector<LocalizedComponent>& components() const {
    return components_;
  }

  /// Exact number of distinct factored repair combinations
  /// Π_i |repairs_i| (the materialized set the factoring avoids).
  BigInt NumRepairCombinations() const;

  /// Exact probability that `fact` survives into an operational repair:
  /// 1 for untouched facts, the component-local marginal otherwise, 0 for
  /// facts not in the database.
  Rational FactSurvivalProbability(const Fact& fact) const;

  /// Draws one operational repair by sampling every component
  /// independently from its exact distribution — no chain walk needed, so
  /// approximate OCQA over localized repairs costs O(#components) per
  /// sample plus the query evaluation.
  Database SampleRepair(Rng* rng) const;

  /// Largest component size in facts (the new exponent).
  size_t MaxComponentSize() const;

 private:
  friend Result<LocalizedRepairs> LocalizeAndEnumerate(
      const Database& db, const ConstraintSet& constraints,
      const ChainGenerator& generator, const EnumerationOptions& options);

  Database untouched_;
  std::vector<LocalizedComponent> components_;
};

/// Splits D into conflict components and enumerates each component's chain.
/// Requires denial-only Σ (Status::InvalidArgument otherwise) and a local
/// generator (see file comment). Component enumerations share `options`.
Result<LocalizedRepairs> LocalizeAndEnumerate(
    const Database& db, const ConstraintSet& constraints,
    const ChainGenerator& generator, const EnumerationOptions& options = {});

/// The conflict components themselves (sorted fact lists), exposed for
/// diagnostics and tests.
std::vector<std::vector<Fact>> ConflictComponents(
    const Database& db, const ConstraintSet& constraints);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_LOCALIZATION_H_
