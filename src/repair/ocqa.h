// Exact operational consistent query answering (Section 4).
//
// For a database D, constraints Σ, generator MΣ and query Q(x̄), the
// conditional probability of a tuple t̄ is
//
//            Σ { p : (D′,p) ∈ [[D]]_MΣ, t̄ ∈ Q(D′) }
//   CP(t̄) = ──────────────────────────────────────────
//                Σ { p : (D′,p) ∈ [[D]]_MΣ }
//
// and 0 when no operational repair exists. OCA(D,Q) pairs every tuple with
// its CP; we materialize the (finitely many) tuples with CP > 0 — all other
// tuples of dom(B(D,Σ))^|x̄| implicitly carry 0.
//
// This is the FP#P-complete problem OCQA of Theorem 5, computed exactly
// over the enumerated chain.

#ifndef OPCQA_REPAIR_OCQA_H_
#define OPCQA_REPAIR_OCQA_H_

#include <map>

#include "logic/query.h"
#include "repair/repair_enumerator.h"

namespace opcqa {

struct OcaResult {
  /// Tuples with CP > 0, with their exact conditional probabilities.
  std::map<Tuple, Rational> answers;
  /// The denominator Σ p (mass of successful sequences).
  Rational success_mass;
  /// Mass lost to failing sequences (1 − success_mass when untruncated).
  Rational failing_mass;
  /// Underlying chain statistics.
  EnumerationResult enumeration;

  /// CP of a specific tuple (0 when not an answer anywhere).
  Rational Probability(const Tuple& tuple) const;

  /// Tuples with CP ≥ threshold (e.g. 1 = "certain under the operational
  /// semantics").
  std::vector<Tuple> AnswersAtLeast(const Rational& threshold) const;
};

/// Computes OCA_MΣ(D,Q) exactly by enumerating the chain.
OcaResult ComputeOca(const Database& db, const ConstraintSet& constraints,
                     const ChainGenerator& generator, const Query& query,
                     const EnumerationOptions& options = {});

/// Computes CP for a single tuple (the OCQA problem of Theorem 5).
Rational ComputeTupleProbability(const Database& db,
                                 const ConstraintSet& constraints,
                                 const ChainGenerator& generator,
                                 const Query& query, const Tuple& tuple,
                                 const EnumerationOptions& options = {});

/// Reuses an existing enumeration (many queries over one chain).
OcaResult OcaFromEnumeration(const EnumerationResult& enumeration,
                             const Query& query);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_OCQA_H_
