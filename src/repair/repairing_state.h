// RepairingState: one state of the virtual repairing Markov chain — a
// repairing sequence s together with everything needed to check, in
// amortized polynomial time, whether s · op is still a repairing sequence
// (Definition 4):
//
//   req1 (progress)        — op eliminates at least one violation;
//   req2 (no resurrection) — violations eliminated earlier never reappear;
//   Local Justification    — op is (D^s_i, Σ)-justified (Definition 3);
//   No Cancellation        — added facts are never removed and vice versa;
//   Global Justification   — earlier additions stay justified when later
//                            deletions are taken into account.
//
// The state is delta-based: ApplyTrusted mutates in place and records an
// undo entry, and Revert() pops it, so DFS branching (enumerator, chain
// renderer) and Markov walks (Sample, ABC-via-chain) run apply → recurse →
// revert without ever copying a state. Frozen Database instances — repair
// aggregation keys, RepairInfo::repair — come from Snapshot(). States stay
// copyable for frontier searches (top-k) via Fork(), which drops the undo
// history: a forked state cannot Revert() past its fork point.

#ifndef OPCQA_REPAIR_REPAIRING_STATE_H_
#define OPCQA_REPAIR_REPAIRING_STATE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "constraints/violation.h"
#include "relational/base.h"
#include "repair/justified.h"
#include "repair/operation.h"

namespace opcqa {

/// Immutable context shared by all states of one repairing process.
struct RepairContext {
  Database initial;          // D
  ConstraintSet constraints; // Σ
  BaseSpec base;             // B(D,Σ)
  ViolationSet initial_violations;  // V(D,Σ), shared by every root state
  // With EGDs/DCs only, justified operations are deletions, deletions are
  // violation-monotone (req2 holds for free) and there are no additions to
  // re-justify — ValidExtensions takes a fast path.
  bool denial_only = false;
  // Denial-only contexts with initial violations also pre-materialize every
  // candidate deletion once (violation-monotonicity keeps any reachable
  // state's violations inside V(D,Σ)), so each chain step merges sorted
  // rank lists instead of re-enumerating subsets. Null otherwise.
  std::shared_ptr<const DeletionCandidateIndex> deletion_index;

  /// Builds the context, deriving B(D,Σ) from D and the constants of Σ.
  static std::shared_ptr<const RepairContext> Make(Database db,
                                                   ConstraintSet constraints);
};

class RepairingState {
 public:
  /// The empty sequence ε over D.
  explicit RepairingState(std::shared_ptr<const RepairContext> context);

  const RepairContext& context() const { return *context_; }
  /// D^s_i — the database after applying the whole sequence.
  const Database& current() const { return db_; }
  /// A frozen copy of D^s_i (use as map key / result value; `current()` is
  /// invalidated by the next Apply/Revert).
  Database Snapshot() const { return db_; }
  /// The sequence s itself.
  const OperationSequence& sequence() const { return sequence_; }
  size_t depth() const { return sequence_.size(); }
  /// V(D^s_i, Σ).
  const ViolationSet& violations() const { return violations_; }
  bool IsConsistent() const { return violations_.empty(); }

  /// ∪_i V(D_{i-1}) − V(D_i): every violation eliminated so far (req2
  /// forbids their reappearance). Exposed for transposition-table
  /// collision verification (repair/memo.h).
  const ViolationSet& eliminated() const { return eliminated_; }

  /// Facts of D deleted by the sequence so far. On deletion-only chains
  /// current() = D − removed(), which is what lets the transposition
  /// table verify states by this depth-sized delta instead of a full
  /// database copy (repair/memo.h).
  const std::set<FactId>& removed() const { return removed_; }

  // O(1) state-fingerprint accessors for repair-space memoization. Both
  // are maintained incrementally — the database hash by InsertId/EraseId
  // (O(delta) per operation), the eliminated-set hash by
  // ApplyTrusted/Revert on the newly-eliminated delta — so keying a state
  // never re-walks the database or the eliminated set.
  size_t db_hash() const { return db_.Hash(); }
  size_t eliminated_hash() const { return eliminated_hash_; }

  /// Every operation op such that s · op is a repairing sequence. Sorted
  /// deterministically. Empty iff the sequence is complete.
  std::vector<Operation> ValidExtensions() const;

  /// True when s · op is a repairing sequence (op need not come from
  /// ValidExtensions()).
  bool CanApply(const Operation& op) const;

  /// Appends op; CHECK-fails unless CanApply(op).
  void Apply(const Operation& op);

  /// Appends op without re-validating. Only pass operations obtained from
  /// ValidExtensions() of *this* state (hot path of the enumerator and the
  /// Sample algorithm).
  void ApplyTrusted(const Operation& op);

  /// Undoes the most recent Apply/ApplyTrusted, restoring current(),
  /// violations() and all bookkeeping exactly. CHECK-fails with no undo
  /// history (at ε, or past a Fork() point).
  void Revert();

  /// A mark for Restore(): the current depth.
  size_t Mark() const { return sequence_.size(); }
  /// Reverts back to an earlier Mark().
  void Restore(size_t mark);

  /// A copy that shares the context but drops the undo history (cheapest
  /// possible copy for frontier searches; cannot Revert past this point).
  RepairingState Fork() const;

  /// Complete = no valid extension (absorbing state of the chain).
  bool IsComplete() const { return ValidExtensions().empty(); }
  /// A complete sequence is successful iff the result satisfies Σ.
  bool IsSuccessful() const { return IsConsistent() && IsComplete(); }
  /// Complete but inconsistent (the chain got stuck).
  bool IsFailing() const { return !IsConsistent() && IsComplete(); }

  std::string ToString() const;

 private:
  // One record per earlier addition, for Global Justification re-checks.
  struct AdditionRecord {
    Operation op;
    Database pre_db;                // D^s_{i-1} (an id-vector copy)
    std::set<FactId> removed_after; // H: facts deleted at steps k > i
  };

  // Everything one Revert() needs besides the operation itself.
  struct UndoRecord {
    std::vector<Violation> appeared;         // in V(D_i) − V(D_{i-1})
    std::vector<Violation> disappeared;      // in V(D_{i-1}) − V(D_i)
    std::vector<Violation> newly_eliminated; // freshly inserted in eliminated_
  };

  bool CheckNoCancellation(const Operation& op) const;
  // Probes s · op: applies op to db_ in place, computes V, reverts, and
  // checks no eliminated violation reappeared. db_ is unchanged on return.
  bool CheckReq2(const Operation& op, ViolationSet* next_violations) const;
  bool CheckGlobalJustification(const Operation& op) const;

  std::shared_ptr<const RepairContext> context_;
  // mutable: CheckReq2 probes candidate operations by apply + revert
  // instead of copying the database per candidate.
  mutable Database db_;
  OperationSequence sequence_;
  ViolationSet violations_;   // V(current)
  ViolationSet eliminated_;   // ∪_i V(D_{i-1}) − V(D_i)
  size_t eliminated_hash_ = 0;  // sum of mixed Violation hashes of eliminated_
  std::set<FactId> added_;
  std::set<FactId> removed_;
  std::vector<AdditionRecord> additions_;
  std::vector<UndoRecord> undo_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_REPAIRING_STATE_H_
