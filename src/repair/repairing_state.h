// RepairingState: one state of the virtual repairing Markov chain — a
// repairing sequence s together with everything needed to check, in
// amortized polynomial time, whether s · op is still a repairing sequence
// (Definition 4):
//
//   req1 (progress)        — op eliminates at least one violation;
//   req2 (no resurrection) — violations eliminated earlier never reappear;
//   Local Justification    — op is (D^s_i, Σ)-justified (Definition 3);
//   No Cancellation        — added facts are never removed and vice versa;
//   Global Justification   — earlier additions stay justified when later
//                            deletions are taken into account.
//
// States are copyable; the exact enumerator copies them along DFS branches.

#ifndef OPCQA_REPAIR_REPAIRING_STATE_H_
#define OPCQA_REPAIR_REPAIRING_STATE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "constraints/violation.h"
#include "relational/base.h"
#include "repair/justified.h"
#include "repair/operation.h"

namespace opcqa {

/// Immutable context shared by all states of one repairing process.
struct RepairContext {
  Database initial;          // D
  ConstraintSet constraints; // Σ
  BaseSpec base;             // B(D,Σ)
  // With EGDs/DCs only, justified operations are deletions, deletions are
  // violation-monotone (req2 holds for free) and there are no additions to
  // re-justify — ValidExtensions takes a fast path.
  bool denial_only = false;

  /// Builds the context, deriving B(D,Σ) from D and the constants of Σ.
  static std::shared_ptr<const RepairContext> Make(Database db,
                                                   ConstraintSet constraints);
};

class RepairingState {
 public:
  /// The empty sequence ε over D.
  explicit RepairingState(std::shared_ptr<const RepairContext> context);

  const RepairContext& context() const { return *context_; }
  /// D^s_i — the database after applying the whole sequence.
  const Database& current() const { return db_; }
  /// The sequence s itself.
  const OperationSequence& sequence() const { return sequence_; }
  size_t depth() const { return sequence_.size(); }
  /// V(D^s_i, Σ).
  const ViolationSet& violations() const { return violations_; }
  bool IsConsistent() const { return violations_.empty(); }

  /// Every operation op such that s · op is a repairing sequence. Sorted
  /// deterministically. Empty iff the sequence is complete.
  std::vector<Operation> ValidExtensions() const;

  /// True when s · op is a repairing sequence (op need not come from
  /// ValidExtensions()).
  bool CanApply(const Operation& op) const;

  /// Appends op; CHECK-fails unless CanApply(op).
  void Apply(const Operation& op);

  /// Appends op without re-validating. Only pass operations obtained from
  /// ValidExtensions() of *this* state (hot path of the enumerator and the
  /// Sample algorithm).
  void ApplyTrusted(const Operation& op);

  /// Complete = no valid extension (absorbing state of the chain).
  bool IsComplete() const { return ValidExtensions().empty(); }
  /// A complete sequence is successful iff the result satisfies Σ.
  bool IsSuccessful() const { return IsConsistent() && IsComplete(); }
  /// Complete but inconsistent (the chain got stuck).
  bool IsFailing() const { return !IsConsistent() && IsComplete(); }

  std::string ToString() const;

 private:
  // One record per earlier addition, for Global Justification re-checks.
  struct AdditionRecord {
    Operation op;
    Database pre_db;              // D^s_{i-1}
    std::set<Fact> removed_after; // H: facts deleted at steps k > i
  };

  bool CheckNoCancellation(const Operation& op) const;
  bool CheckReq2(const Database& next_db, ViolationSet* next_violations) const;
  bool CheckGlobalJustification(const Operation& op) const;

  std::shared_ptr<const RepairContext> context_;
  Database db_;
  OperationSequence sequence_;
  ViolationSet violations_;   // V(current)
  ViolationSet eliminated_;   // ∪_i V(D_{i-1}) − V(D_i)
  std::set<Fact> added_;
  std::set<Fact> removed_;
  std::vector<AdditionRecord> additions_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_REPAIRING_STATE_H_
