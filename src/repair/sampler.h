// The randomized approximation scheme of Section 5 (Theorem 9, Prop. 10).
//
// Algorithm Sample performs one random walk of the repairing Markov chain:
// starting from ε it repeatedly samples an extension according to the
// generator's probabilities until an absorbing state is reached, then
// reports the resulting database. For non-failing generators every walk
// ends in an operational repair distributed by the hitting distribution,
// so 1{t̄ ∈ Q(s(D))} is an unbiased Bernoulli sample of CP(t̄).
//
// Hoeffding's inequality turns n = ⌈ln(2/δ) / (2ε²)⌉ walks into an additive
// (ε,δ)-approximation: Pr(|estimate − CP(t̄)| ≤ ε) ≥ 1 − δ. (ε = δ = 0.1
// gives the paper's n = 150.)
//
// The estimation loops are embarrassingly parallel: walk i draws from its
// own RNG stream Rng::Stream(seed, i), a pure function of (seed, i), and
// per-walk tallies are integers merged in index order — so estimates are
// bit-identical for every options.threads value (including 1) and every
// scheduling. Walks run on states forked from one immutable RepairContext;
// the generator must be safe for concurrent Probabilities() calls.

#ifndef OPCQA_REPAIR_SAMPLER_H_
#define OPCQA_REPAIR_SAMPLER_H_

#include <map>

#include "logic/query.h"
#include "repair/chain_generator.h"
#include "util/random.h"

namespace opcqa {

/// Result of one chain walk.
struct WalkResult {
  Database final_db;
  size_t steps = 0;
  /// True when the walk ended in a consistent database (always true for
  /// non-failing generators, Proposition 8).
  bool successful = false;
};

/// Aggregate of an (ε,δ) estimation run.
struct ApproxOcaResult {
  /// tuple → fraction of successful walks whose repair answered it. Each
  /// individual tuple estimate carries the (ε,δ) additive guarantee.
  std::map<Tuple, double> estimates;
  size_t walks = 0;
  size_t successful_walks = 0;
  size_t failing_walks = 0;
  size_t total_steps = 0;
  double epsilon = 0;
  double delta = 0;

  double Estimate(const Tuple& tuple) const;
};

struct SamplerOptions {
  /// Worker threads for the estimation loops; 0 means DefaultThreads().
  /// Estimates are bit-identical for every value (per-walk RNG streams).
  size_t threads = 1;
};

class Sampler {
 public:
  Sampler(const Database& db, const ConstraintSet& constraints,
          const ChainGenerator* generator, uint64_t seed,
          SamplerOptions options = {});

  /// n(ε,δ) = ⌈ln(2/δ) / (2ε²)⌉ (Hoeffding).
  static size_t NumSamples(double epsilon, double delta);

  /// One execution of algorithm Sample, drawing from the sampler's own
  /// (stateful) stream.
  WalkResult RunWalk();

  /// One execution of algorithm Sample on the independent stream
  /// (seed, walk_index) — the thread-count-invariant unit of the
  /// estimation loops. A pure function of (seed, walk_index); safe to call
  /// concurrently. The estimation methods advance a per-sampler stream
  /// cursor so successive calls consume disjoint index ranges (independent
  /// estimates), each range split across threads deterministically.
  WalkResult RunWalkAt(uint64_t walk_index) const;

  /// Estimates CP(t̄) for a single tuple with additive error ε at
  /// confidence 1−δ. Failing walks (impossible for non-failing generators)
  /// contribute 0, matching Pr(Sample = 1) = Σ_{t̄∈Q(D′)} p.
  double EstimateTuple(const Query& query, const Tuple& tuple, double epsilon,
                       double delta);

  /// Runs n(ε,δ) walks once and scores every answer tuple encountered.
  ApproxOcaResult EstimateOca(const Query& query, double epsilon,
                              double delta);

  /// Same, with an explicit number of walks.
  ApproxOcaResult EstimateOcaWithWalks(const Query& query, size_t walks);

 private:
  WalkResult WalkWithRng(Rng* rng) const;

  std::shared_ptr<const RepairContext> context_;
  const ChainGenerator* generator_;
  uint64_t seed_;
  SamplerOptions options_;
  Rng rng_;
  // First unused walk index; estimation calls claim [cursor, cursor+n) so
  // repeated calls are independent yet reproducible from (seed, call
  // sequence) alone.
  uint64_t walk_cursor_ = 0;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_SAMPLER_H_
