// The randomized approximation scheme of Section 5 (Theorem 9, Prop. 10).
//
// Algorithm Sample performs one random walk of the repairing Markov chain:
// starting from ε it repeatedly samples an extension according to the
// generator's probabilities until an absorbing state is reached, then
// reports the resulting database. For non-failing generators every walk
// ends in an operational repair distributed by the hitting distribution,
// so 1{t̄ ∈ Q(s(D))} is an unbiased Bernoulli sample of CP(t̄).
//
// Hoeffding's inequality turns n = ⌈ln(2/δ) / (2ε²)⌉ walks into an additive
// (ε,δ)-approximation: Pr(|estimate − CP(t̄)| ≤ ε) ≥ 1 − δ. (ε = δ = 0.1
// gives the paper's n = 150.)

#ifndef OPCQA_REPAIR_SAMPLER_H_
#define OPCQA_REPAIR_SAMPLER_H_

#include <map>

#include "logic/query.h"
#include "repair/chain_generator.h"
#include "util/random.h"

namespace opcqa {

/// Result of one chain walk.
struct WalkResult {
  Database final_db;
  size_t steps = 0;
  /// True when the walk ended in a consistent database (always true for
  /// non-failing generators, Proposition 8).
  bool successful = false;
};

/// Aggregate of an (ε,δ) estimation run.
struct ApproxOcaResult {
  /// tuple → fraction of successful walks whose repair answered it. Each
  /// individual tuple estimate carries the (ε,δ) additive guarantee.
  std::map<Tuple, double> estimates;
  size_t walks = 0;
  size_t successful_walks = 0;
  size_t failing_walks = 0;
  size_t total_steps = 0;
  double epsilon = 0;
  double delta = 0;

  double Estimate(const Tuple& tuple) const;
};

class Sampler {
 public:
  Sampler(const Database& db, const ConstraintSet& constraints,
          const ChainGenerator* generator, uint64_t seed);

  /// n(ε,δ) = ⌈ln(2/δ) / (2ε²)⌉ (Hoeffding).
  static size_t NumSamples(double epsilon, double delta);

  /// One execution of algorithm Sample.
  WalkResult RunWalk();

  /// Estimates CP(t̄) for a single tuple with additive error ε at
  /// confidence 1−δ. Failing walks (impossible for non-failing generators)
  /// contribute 0, matching Pr(Sample = 1) = Σ_{t̄∈Q(D′)} p.
  double EstimateTuple(const Query& query, const Tuple& tuple, double epsilon,
                       double delta);

  /// Runs n(ε,δ) walks once and scores every answer tuple encountered.
  ApproxOcaResult EstimateOca(const Query& query, double epsilon,
                              double delta);

  /// Same, with an explicit number of walks.
  ApproxOcaResult EstimateOcaWithWalks(const Query& query, size_t walks);

 private:
  std::shared_ptr<const RepairContext> context_;
  const ChainGenerator* generator_;
  Rng rng_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_SAMPLER_H_
