#include "repair/aggregation.h"

#include <algorithm>

#include "util/string_util.h"

namespace opcqa {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount: return "COUNT";
    case AggregateKind::kSum: return "SUM";
    case AggregateKind::kMin: return "MIN";
    case AggregateKind::kMax: return "MAX";
    case AggregateKind::kAvg: return "AVG";
  }
  return "?";
}

Result<Rational> NumericValueOf(ConstId id) {
  const std::string& name = ConstName(id);
  bool negative = !name.empty() && name[0] == '-';
  size_t start = negative ? 1 : 0;
  if (start == name.size()) {
    return Status::InvalidArgument(
        StrCat("non-numeric aggregate value '", name, "'"));
  }
  BigInt value(0);
  for (size_t i = start; i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("non-numeric aggregate value '", name, "'"));
    }
    value = value * BigInt(10) + BigInt(static_cast<int64_t>(c - '0'));
  }
  Rational result(value);
  return negative ? -result : result;
}

Result<std::optional<Rational>> AggregateOfAnswers(
    const std::set<Tuple>& answers, AggregateKind kind,
    size_t value_column) {
  if (kind == AggregateKind::kCount) {
    return std::optional<Rational>(
        Rational(static_cast<int64_t>(answers.size())));
  }
  if (answers.empty()) {
    if (kind == AggregateKind::kSum) {
      return std::optional<Rational>(Rational(0));
    }
    return std::optional<Rational>(std::nullopt);  // MIN/MAX/AVG undefined
  }
  std::vector<Rational> values;
  values.reserve(answers.size());
  for (const Tuple& tuple : answers) {
    if (value_column >= tuple.size()) {
      return Status::InvalidArgument(
          StrCat("value column ", value_column, " out of range for arity ",
                 tuple.size()));
    }
    Result<Rational> value = NumericValueOf(tuple[value_column]);
    if (!value.ok()) return value.status();
    values.push_back(value.value());
  }
  switch (kind) {
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      Rational sum(0);
      for (const Rational& v : values) sum += v;
      if (kind == AggregateKind::kSum) return std::optional<Rational>(sum);
      return std::optional<Rational>(
          sum / Rational(static_cast<int64_t>(values.size())));
    }
    case AggregateKind::kMin:
      return std::optional<Rational>(
          *std::min_element(values.begin(), values.end()));
    case AggregateKind::kMax:
      return std::optional<Rational>(
          *std::max_element(values.begin(), values.end()));
    case AggregateKind::kCount:
      break;  // handled above
  }
  return Status::Internal("unreachable aggregate kind");
}

Result<AggregateDistribution> ComputeAggregateDistribution(
    const EnumerationResult& enumeration, const Query& query,
    AggregateKind kind, size_t value_column) {
  AggregateDistribution out;
  out.num_repairs = enumeration.repairs.size();
  Rational defined_mass(0);
  for (const RepairInfo& info : enumeration.repairs) {
    std::set<Tuple> answers = query.Evaluate(info.repair);
    Result<std::optional<Rational>> scalar =
        AggregateOfAnswers(answers, kind, value_column);
    if (!scalar.ok()) return scalar.status();
    if (!scalar.value().has_value()) {
      out.undefined_mass += info.probability;
      continue;
    }
    out.distribution[*scalar.value()] += info.probability;
    defined_mass += info.probability;
  }
  if (defined_mass.is_zero()) {
    return out;  // everything undefined; distribution empty
  }
  // Condition on the scalar being defined, then take moments.
  Rational expectation(0);
  Rational second_moment(0);
  for (auto& [value, mass] : out.distribution) {
    mass /= defined_mass;
    expectation += value * mass;
    second_moment += value * value * mass;
  }
  out.expectation = expectation;
  out.variance = second_moment - expectation * expectation;
  out.glb = out.distribution.begin()->first;
  out.lub = out.distribution.rbegin()->first;
  return out;
}

Result<AggregateEstimate> EstimateExpectedAggregate(
    Sampler& sampler, const Query& query, AggregateKind kind,
    size_t value_column, size_t walks) {
  OPCQA_CHECK_GT(walks, 0u);
  AggregateEstimate estimate;
  estimate.walks = walks;
  double sum = 0;
  size_t defined = 0;
  for (size_t walk = 0; walk < walks; ++walk) {
    WalkResult result = sampler.RunWalk();
    if (!result.successful) {
      ++estimate.undefined_walks;
      continue;
    }
    std::set<Tuple> answers = query.Evaluate(result.final_db);
    Result<std::optional<Rational>> scalar =
        AggregateOfAnswers(answers, kind, value_column);
    if (!scalar.ok()) return scalar.status();
    if (!scalar.value().has_value()) {
      ++estimate.undefined_walks;
      continue;
    }
    sum += scalar.value()->ToDouble();
    ++defined;
  }
  if (defined > 0) {
    estimate.expectation = sum / static_cast<double>(defined);
  }
  return estimate;
}

}  // namespace opcqa
