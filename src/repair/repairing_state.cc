#include "repair/repairing_state.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

std::shared_ptr<const RepairContext> RepairContext::Make(
    Database db, ConstraintSet constraints) {
  BaseSpec base = BaseSpec::ForDatabase(db, ConstantsOf(constraints));
  bool denial_only = IsDenialOnly(constraints);
  auto context = std::make_shared<RepairContext>(RepairContext{
      std::move(db), std::move(constraints), std::move(base), denial_only});
  return context;
}

RepairingState::RepairingState(std::shared_ptr<const RepairContext> context)
    : context_(std::move(context)),
      db_(context_->initial),
      violations_(ComputeViolations(db_, context_->constraints)) {}

bool RepairingState::CheckNoCancellation(const Operation& op) const {
  // "+F then −G with F ∩ G ≠ ∅" is forbidden in either order.
  const std::set<Fact>& conflicting = op.is_add() ? removed_ : added_;
  for (const Fact& fact : op.facts()) {
    if (conflicting.count(fact) > 0) return false;
  }
  return true;
}

bool RepairingState::CheckReq2(const Database& next_db,
                               ViolationSet* next_violations) const {
  *next_violations = ComputeViolations(next_db, context_->constraints);
  // No violation eliminated earlier (including by the candidate op itself,
  // which cannot re-introduce what it just removed) may be present again.
  for (const Violation& v : *next_violations) {
    if (eliminated_.count(v) > 0) return false;
  }
  return true;
}

bool RepairingState::CheckGlobalJustification(const Operation& op) const {
  if (!op.is_remove()) return true;  // H only grows through deletions
  for (const AdditionRecord& record : additions_) {
    Database reduced = record.pre_db;
    for (const Fact& fact : record.removed_after) reduced.Erase(fact);
    for (const Fact& fact : op.facts()) reduced.Erase(fact);
    if (!IsJustified(reduced, context_->constraints, context_->base,
                     record.op)) {
      return false;
    }
  }
  return true;
}

bool RepairingState::CanApply(const Operation& op) const {
  // Operations must stay inside the base (Definition 1).
  for (const Fact& fact : op.facts()) {
    if (!context_->base.Contains(fact)) return false;
  }
  // Additions of present facts / removals of absent facts would make the
  // operation a partial no-op; justified operations never do this, and
  // tightness below rejects them, but reject cheaply first.
  for (const Fact& fact : op.facts()) {
    if (op.is_add() && db_.Contains(fact)) return false;
    if (op.is_remove() && !db_.Contains(fact)) return false;
  }
  if (!CheckNoCancellation(op)) return false;
  // Local justification (implies req1).
  if (!IsJustified(db_, context_->constraints, context_->base, op)) {
    return false;
  }
  Database next_db = op.Apply(db_);
  ViolationSet next_violations;
  if (!CheckReq2(next_db, &next_violations)) return false;
  if (!CheckGlobalJustification(op)) return false;
  return true;
}

void RepairingState::Apply(const Operation& op) {
  OPCQA_CHECK(CanApply(op)) << "operation is not a valid extension: "
                            << op.ToString(context_->initial.schema());
  ApplyTrusted(op);
}

void RepairingState::ApplyTrusted(const Operation& op) {
  Database next_db = op.Apply(db_);
  ViolationSet next_violations =
      ComputeViolations(next_db, context_->constraints);
  // Track eliminated violations (req2 bookkeeping).
  for (const Violation& v : violations_) {
    if (next_violations.count(v) == 0) eliminated_.insert(v);
  }
  // Track fact provenance (no-cancellation) and addition records (global
  // justification).
  if (op.is_add()) {
    AdditionRecord record{op, db_, {}};
    additions_.push_back(std::move(record));
    for (const Fact& fact : op.facts()) added_.insert(fact);
  } else {
    for (AdditionRecord& record : additions_) {
      for (const Fact& fact : op.facts()) record.removed_after.insert(fact);
    }
    for (const Fact& fact : op.facts()) removed_.insert(fact);
  }
  db_ = std::move(next_db);
  violations_ = std::move(next_violations);
  sequence_.push_back(op);
}

std::vector<Operation> RepairingState::ValidExtensions() const {
  if (violations_.empty()) return {};  // consistent ⇒ nothing is justified
  if (context_->denial_only) {
    // Fast path: every justified deletion is a valid extension (no
    // cancellation partners, no resurrections, no additions to
    // re-justify).
    return JustifiedDeletions(db_, context_->constraints, violations_);
  }
  std::vector<Operation> candidates = JustifiedOperations(
      db_, context_->constraints, violations_, context_->base);
  std::vector<Operation> valid;
  valid.reserve(candidates.size());
  for (const Operation& op : candidates) {
    // Candidates are locally justified by construction; check the cheaper
    // conditions first, then req2 / global justification.
    if (!CheckNoCancellation(op)) continue;
    Database next_db = op.Apply(db_);
    ViolationSet next_violations;
    if (!CheckReq2(next_db, &next_violations)) continue;
    if (!CheckGlobalJustification(op)) continue;
    valid.push_back(op);
  }
  return valid;
}

std::string RepairingState::ToString() const {
  return StrCat(SequenceToString(sequence_, context_->initial.schema()),
                " ⇒ {", db_.ToString(), "}");
}

}  // namespace opcqa
