#include "repair/repairing_state.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

std::shared_ptr<const RepairContext> RepairContext::Make(
    Database db, ConstraintSet constraints) {
  BaseSpec base = BaseSpec::ForDatabase(db, ConstantsOf(constraints));
  ViolationSet initial_violations = ComputeViolations(db, constraints);
  bool denial_only = IsDenialOnly(constraints);
  auto context = std::make_shared<RepairContext>(
      RepairContext{std::move(db), std::move(constraints), std::move(base),
                    std::move(initial_violations), denial_only});
  if (denial_only && !context->initial_violations.empty()) {
    context->deletion_index = DeletionCandidateIndex::Build(
        context->constraints, context->initial_violations);
  }
  return context;
}

RepairingState::RepairingState(std::shared_ptr<const RepairContext> context)
    : context_(std::move(context)),
      db_(context_->initial),
      violations_(context_->initial_violations) {}

bool RepairingState::CheckNoCancellation(const Operation& op) const {
  // "+F then −G with F ∩ G ≠ ∅" is forbidden in either order.
  const std::set<FactId>& conflicting = op.is_add() ? removed_ : added_;
  for (FactId id : op.fact_ids()) {
    if (conflicting.count(id) > 0) return false;
  }
  return true;
}

bool RepairingState::CheckReq2(const Operation& op,
                               ViolationSet* next_violations) const {
  op.ApplyTo(&db_);
  *next_violations = ComputeViolations(db_, context_->constraints);
  op.RevertOn(&db_);
  // No violation eliminated earlier (including by the candidate op itself,
  // which cannot re-introduce what it just removed) may be present again.
  for (const Violation& v : *next_violations) {
    if (eliminated_.count(v) > 0) return false;
  }
  return true;
}

bool RepairingState::CheckGlobalJustification(const Operation& op) const {
  if (!op.is_remove()) return true;  // H only grows through deletions
  for (const AdditionRecord& record : additions_) {
    Database reduced = record.pre_db;
    for (FactId id : record.removed_after) reduced.EraseId(id);
    for (FactId id : op.fact_ids()) reduced.EraseId(id);
    if (!IsJustified(reduced, context_->constraints, context_->base,
                     record.op)) {
      return false;
    }
  }
  return true;
}

bool RepairingState::CanApply(const Operation& op) const {
  // Operations must stay inside the base (Definition 1).
  for (const Fact& fact : op.facts()) {
    if (!context_->base.Contains(fact)) return false;
  }
  // Additions of present facts / removals of absent facts would make the
  // operation a partial no-op; justified operations never do this, and
  // tightness below rejects them, but reject cheaply first.
  for (FactId id : op.fact_ids()) {
    if (op.is_add() && db_.ContainsId(id)) return false;
    if (op.is_remove() && !db_.ContainsId(id)) return false;
  }
  if (!CheckNoCancellation(op)) return false;
  // Local justification (implies req1).
  if (!IsJustified(db_, context_->constraints, context_->base, op)) {
    return false;
  }
  ViolationSet next_violations;
  if (!CheckReq2(op, &next_violations)) return false;
  if (!CheckGlobalJustification(op)) return false;
  return true;
}

void RepairingState::Apply(const Operation& op) {
  OPCQA_CHECK(CanApply(op)) << "operation is not a valid extension: "
                            << op.ToString(context_->initial.schema());
  ApplyTrusted(op);
}

void RepairingState::ApplyTrusted(const Operation& op) {
  // Track fact provenance (no-cancellation) and addition records (global
  // justification). pre_db is captured before the in-place application.
  if (op.is_add()) {
    additions_.push_back(AdditionRecord{op, db_, {}});
    for (FactId id : op.fact_ids()) added_.insert(id);
  } else {
    for (AdditionRecord& record : additions_) {
      for (FactId id : op.fact_ids()) record.removed_after.insert(id);
    }
    for (FactId id : op.fact_ids()) removed_.insert(id);
  }
  // Delta bookkeeping requires an effective operation (every added fact
  // absent, every removed fact present) — a partial no-op would make the
  // later Revert corrupt the shared state. ValidExtensions only produces
  // effective operations; this guards against other callers.
  for (FactId id : op.fact_ids()) {
    bool effective = op.is_add() ? db_.InsertId(id) : db_.EraseId(id);
    OPCQA_CHECK(effective)
        << "ApplyTrusted requires an effective operation: "
        << op.ToString(context_->initial.schema());
  }
  ViolationSet next_violations;
  if (context_->denial_only && op.is_remove()) {
    // Deletions under EGDs/DCs are violation-monotone: body matches of
    // D − F are exactly those of D avoiding F, and the conclusions ignore
    // the database. V(D − F) is therefore the surviving subset of V(D) —
    // no homomorphism search needed on this hot path.
    for (const Violation& v : violations_) {
      if (!BodyImageIntersects(context_->constraints, v, op.fact_ids())) {
        next_violations.insert(next_violations.end(), v);
      }
    }
  } else {
    next_violations = ComputeViolations(db_, context_->constraints);
  }
  // Track the violation delta (req2 bookkeeping + undo).
  UndoRecord undo;
  for (const Violation& v : violations_) {
    if (next_violations.count(v) == 0) {
      undo.disappeared.push_back(v);
      if (eliminated_.insert(v).second) {
        undo.newly_eliminated.push_back(v);
        eliminated_hash_ += HashMix64(v.Hash());
      }
    }
  }
  for (const Violation& v : next_violations) {
    if (violations_.count(v) == 0) undo.appeared.push_back(v);
  }
  violations_ = std::move(next_violations);
  sequence_.push_back(op);
  undo_.push_back(std::move(undo));
}

void RepairingState::Revert() {
  OPCQA_CHECK(!undo_.empty()) << "no step to revert (at ε or a fork point)";
  const Operation op = std::move(sequence_.back());
  sequence_.pop_back();
  UndoRecord undo = std::move(undo_.back());
  undo_.pop_back();
  // Violations: undo the delta.
  for (const Violation& v : undo.appeared) violations_.erase(v);
  for (const Violation& v : undo.disappeared) violations_.insert(v);
  for (const Violation& v : undo.newly_eliminated) {
    eliminated_.erase(v);
    eliminated_hash_ -= HashMix64(v.Hash());
  }
  // Database and provenance. Every fact of an operation is fresh to its
  // direction (a fact is added / removed at most once per sequence), so
  // erasing the op's facts restores added_/removed_/removed_after exactly.
  op.RevertOn(&db_);
  if (op.is_add()) {
    for (FactId id : op.fact_ids()) added_.erase(id);
    additions_.pop_back();
  } else {
    for (FactId id : op.fact_ids()) removed_.erase(id);
    for (AdditionRecord& record : additions_) {
      for (FactId id : op.fact_ids()) record.removed_after.erase(id);
    }
  }
}

void RepairingState::Restore(size_t mark) {
  OPCQA_CHECK_LE(mark, sequence_.size());
  while (sequence_.size() > mark) Revert();
}

RepairingState RepairingState::Fork() const {
  RepairingState fork = *this;
  fork.undo_.clear();
  return fork;
}

std::vector<Operation> RepairingState::ValidExtensions() const {
  if (violations_.empty()) return {};  // consistent ⇒ nothing is justified
  if (context_->denial_only) {
    // Fast path: every justified deletion is a valid extension (no
    // cancellation partners, no resurrections, no additions to
    // re-justify). The shared candidate index answers from pre-built
    // operations; an unindexed violation (never expected — deletions are
    // violation-monotone) falls back to the from-scratch enumeration.
    if (context_->deletion_index != nullptr) {
      std::vector<Operation> ops;
      if (context_->deletion_index->AppendFor(violations_, &ops)) return ops;
    }
    return JustifiedDeletions(db_, context_->constraints, violations_);
  }
  std::vector<Operation> candidates = JustifiedOperations(
      db_, context_->constraints, violations_, context_->base);
  std::vector<Operation> valid;
  valid.reserve(candidates.size());
  for (const Operation& op : candidates) {
    // Candidates are locally justified by construction; check the cheaper
    // conditions first, then req2 / global justification.
    if (!CheckNoCancellation(op)) continue;
    ViolationSet next_violations;
    if (!CheckReq2(op, &next_violations)) continue;
    if (!CheckGlobalJustification(op)) continue;
    valid.push_back(op);
  }
  return valid;
}

std::string RepairingState::ToString() const {
  return StrCat(SequenceToString(sequence_, context_->initial.schema()),
                " ⇒ {", db_.ToString(), "}");
}

}  // namespace opcqa
