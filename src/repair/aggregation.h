// Consistent scalar aggregation over operational repairs — the "More
// Expressive Languages" direction of Section 6, after Arenas, Bertossi,
// Chomicki, He, Raghavan & Spinrad, "Scalar aggregation in inconsistent
// databases" (TCS 2003).
//
// For an aggregate AGG over column `value_column` of the answers to Q,
// each operational repair D′ yields one scalar AGG(Q(D′)). The classical
// range semantics reports the interval [glb, lub] of that scalar across
// repairs; the operational framework refines it with the full probability
// distribution of the scalar under the hitting distribution (conditioned
// on success), its expectation and its variance — all exact rationals.
//
// Values are interned constants whose names must parse as (possibly
// negative) decimal integers; otherwise Status::InvalidArgument.
//
// MIN/MAX/AVG are undefined on repairs with an empty answer set; the mass
// of such repairs is reported separately as `undefined_mass` and the
// distribution/statistics are conditioned on the defined repairs.

#ifndef OPCQA_REPAIR_AGGREGATION_H_
#define OPCQA_REPAIR_AGGREGATION_H_

#include <map>
#include <optional>

#include "logic/query.h"
#include "repair/repair_enumerator.h"
#include "repair/sampler.h"

namespace opcqa {

enum class AggregateKind { kCount, kSum, kMin, kMax, kAvg };

const char* AggregateKindName(AggregateKind kind);

/// Parses a constant as an exact integer Rational; InvalidArgument when
/// the name is not a decimal integer.
Result<Rational> NumericValueOf(ConstId id);

/// Computes AGG over one answer set (the per-repair scalar). Returns
/// nullopt for MIN/MAX/AVG of an empty answer set; COUNT/SUM of an empty
/// set are 0.
Result<std::optional<Rational>> AggregateOfAnswers(
    const std::set<Tuple>& answers, AggregateKind kind, size_t value_column);

struct AggregateDistribution {
  /// scalar value → probability (conditioned on success and, for MIN, MAX
  /// and AVG, on the answer set being non-empty).
  std::map<Rational, Rational> distribution;
  /// Range semantics of the classical approach: glb / lub over repairs
  /// with a defined scalar. Unset when no repair defines the scalar.
  std::optional<Rational> glb;
  std::optional<Rational> lub;
  /// E[AGG] and Var[AGG] under the (conditioned) distribution.
  Rational expectation;
  Rational variance;
  /// Probability mass of repairs where the scalar is undefined.
  Rational undefined_mass;
  size_t num_repairs = 0;

  /// True when every repair yields the same scalar — the aggregate is
  /// *certain* in the classical sense.
  bool IsCertain() const { return distribution.size() == 1; }
};

/// Exact aggregate distribution from an enumerated chain.
Result<AggregateDistribution> ComputeAggregateDistribution(
    const EnumerationResult& enumeration, const Query& query,
    AggregateKind kind, size_t value_column);

/// Sampled estimate of E[AGG] over `walks` chain walks (non-failing
/// generators; undefined walks are skipped and counted).
struct AggregateEstimate {
  double expectation = 0;
  size_t walks = 0;
  size_t undefined_walks = 0;
};

Result<AggregateEstimate> EstimateExpectedAggregate(
    Sampler& sampler, const Query& query, AggregateKind kind,
    size_t value_column, size_t walks);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_AGGREGATION_H_
