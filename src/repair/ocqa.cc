#include "repair/ocqa.h"

namespace opcqa {

Rational OcaResult::Probability(const Tuple& tuple) const {
  auto it = answers.find(tuple);
  return it == answers.end() ? Rational(0) : it->second;
}

std::vector<Tuple> OcaResult::AnswersAtLeast(const Rational& threshold) const {
  std::vector<Tuple> result;
  for (const auto& [tuple, p] : answers) {
    if (p >= threshold) result.push_back(tuple);
  }
  return result;
}

OcaResult OcaFromEnumeration(const EnumerationResult& enumeration,
                             const Query& query) {
  OcaResult result;
  result.success_mass = enumeration.success_mass;
  result.failing_mass = enumeration.failing_mass;
  result.enumeration = enumeration;
  if (enumeration.success_mass.is_zero()) {
    // No operational repair: CP(t̄) = 0 for every tuple.
    return result;
  }
  for (const RepairInfo& info : enumeration.repairs) {
    for (const Tuple& tuple : query.Evaluate(info.repair)) {
      result.answers[tuple] += info.probability;
    }
  }
  for (auto& [tuple, p] : result.answers) {
    p /= enumeration.success_mass;
  }
  return result;
}

OcaResult ComputeOca(const Database& db, const ConstraintSet& constraints,
                     const ChainGenerator& generator, const Query& query,
                     const EnumerationOptions& options) {
  EnumerationResult enumeration =
      EnumerateRepairs(db, constraints, generator, options);
  return OcaFromEnumeration(enumeration, query);
}

Rational ComputeTupleProbability(const Database& db,
                                 const ConstraintSet& constraints,
                                 const ChainGenerator& generator,
                                 const Query& query, const Tuple& tuple,
                                 const EnumerationOptions& options) {
  EnumerationResult enumeration =
      EnumerateRepairs(db, constraints, generator, options);
  if (enumeration.success_mass.is_zero()) return Rational(0);
  Rational numerator;
  for (const RepairInfo& info : enumeration.repairs) {
    if (query.Contains(info.repair, tuple)) {
      numerator += info.probability;
    }
  }
  return numerator / enumeration.success_mass;
}

}  // namespace opcqa
