// Null-based repair construction — the "Null Values" direction of
// Section 6 ("We could also use nulls (either SQL or marked) in repairs, in
// cases when we insisted on adding tuples from the base").
//
// The operational framework of the paper grounds TGD witnesses over the
// finite base B(D,Σ), which can make repairing sequences fail (the head
// may need a value that no base constant provides consistently). The
// standard alternative from data exchange is the *chase*: satisfy a TGD
// violation by inserting its head image with fresh *marked nulls* for the
// existential variables. This module implements that repair constructor:
//
//   * TGD violations  → chase step with fresh labelled nulls;
//   * EGD violations  → if one side is a null, unify it (promote the null
//                        to the other value everywhere); if both sides are
//                        distinct constants, resolve by deleting part of
//                        the violation's body image (a repair choice);
//   * DC violations   → resolve by deletion (a repair choice).
//
// A no-resurrection rule (the chase analogue of the framework's req2)
// keeps insert/delete interaction from looping: a TGD step whose required
// ground facts were deleted by an earlier repair choice is resolved by
// deleting from its body image instead of re-inserting.
//
// For weakly acyclic Σ (see constraints/weak_acyclicity.h) every
// insertion-only chase branch terminates; a step budget guards the general
// case (EGD unification can in principle re-create deleted facts, which
// the budget catches). Deletion choices are randomized, so running the
// chase repeatedly samples the space of null repairs; query answering uses
// naive evaluation (nulls behave as fresh constants, answers containing
// nulls are discarded).

#ifndef OPCQA_REPAIR_NULL_CHASE_H_
#define OPCQA_REPAIR_NULL_CHASE_H_

#include <map>
#include <set>
#include <string>

#include "constraints/violation.h"
#include "logic/query.h"
#include "util/random.h"
#include "util/status.h"

namespace opcqa {

/// True when `id` is a marked null created by the chase (name "_:n<k>").
bool IsNullConstant(ConstId id);

/// True when some fact of `db` contains a marked null.
bool HasNulls(const Database& db);

struct ChaseOptions {
  /// Upper bound on chase steps before giving up (ResourceExhausted).
  size_t max_steps = 100000;
  /// When false, EGD/DC deletion choices take the deterministically first
  /// justified deletion instead of a random one.
  bool randomize_choices = true;
};

struct ChaseResult {
  /// The chased database; may contain marked nulls.
  Database db;
  size_t steps = 0;
  size_t nulls_created = 0;
  size_t facts_deleted = 0;
  /// Nulls promoted to constants (or other nulls) by EGD unification.
  size_t nulls_unified = 0;
};

/// Runs the randomized chase repair. `rng` supplies the deletion choices
/// (must be non-null when options.randomize_choices is true). On success
/// the returned database satisfies Σ under naive (null-as-constant)
/// semantics.
Result<ChaseResult> ChaseRepair(const Database& db,
                                const ConstraintSet& constraints, Rng* rng,
                                const ChaseOptions& options = {});

/// Certain-answer discipline over a database with nulls: evaluates Q
/// naively (nulls act as ordinary constants) and discards answer tuples
/// that contain a null.
std::set<Tuple> NaiveAnswers(const Database& db_with_nulls,
                             const Query& query);

/// Estimates, over `runs` randomized chase repairs, the frequency with
/// which each null-free tuple answers Q — the null-repair analogue of the
/// paper's Sample-based estimator. Chases that exceed the budget are
/// reported in `failed_runs` and contribute no answers.
struct ChaseOcaResult {
  std::map<Tuple, double> frequency;
  size_t runs = 0;
  size_t failed_runs = 0;
  /// Mean chase statistics over successful runs.
  double mean_steps = 0;
  double mean_nulls = 0;

  double Frequency(const Tuple& tuple) const;
};

ChaseOcaResult EstimateChaseOca(const Database& db,
                                const ConstraintSet& constraints,
                                const Query& query, size_t runs,
                                uint64_t seed,
                                const ChaseOptions& options = {});

}  // namespace opcqa

#endif  // OPCQA_REPAIR_NULL_CHASE_H_
