// Exact enumeration of the repairing Markov chain.
//
// The chain MΣ(D) is a finite tree (Proposition 2), so its hitting
// distribution exists (Proposition 3) and equals, for each absorbing state
// (complete sequence) s, the product of edge probabilities along the unique
// path ε → s. EnumerateRepairs walks the virtual tree depth-first,
// aggregates the probability mass of every operational repair
// (Definition 6), and reports the failing mass separately — the denominator
// of the conditional probability CP (Section 4).
//
// This is the FP#P-hard exact computation (Theorem 5); a node budget guards
// against runaway instances and reports truncation honestly.
//
// With options.threads > 1 the root's extension set is partitioned across
// workers: each worker forks its own delta-based RepairingState, applies
// one root extension and runs the same DFS on that subtree; per-branch
// results are merged in root-extension (index) order. Exact rational
// arithmetic makes the merged masses equal to the serial sums, and the
// max_states budget is replayed deterministically against per-branch state
// counts (re-walking at most the one branch the budget ends inside), so the
// result — including the truncation path — is byte-identical to a serial
// run for every thread count. Generators must be safe for concurrent
// Probabilities() calls (all built-ins are; they are logically const).

#ifndef OPCQA_REPAIR_REPAIR_ENUMERATOR_H_
#define OPCQA_REPAIR_REPAIR_ENUMERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "repair/chain_generator.h"
#include "repair/memo.h"

namespace opcqa {

class RepairSpaceCache;

struct EnumerationOptions {
  /// Maximum number of chain states to visit before giving up. Memoized
  /// replays count the full virtual subtree, so the budget (and the
  /// truncation it produces) is independent of memoization.
  size_t max_states = 1u << 22;
  /// Skip zero-probability edges (they are unreachable in the chain).
  bool prune_zero_probability = true;
  /// Worker threads sharing the enumeration (root-branch sharding);
  /// 0 means DefaultThreads(). Results are identical for every value.
  size_t threads = 1;
  /// Collapse shared suffixes with a transposition table (repair/memo.h):
  /// sequences reaching the same (database, eliminated-set) state compute
  /// their subtree once and replay it afterwards. Applied only when sound
  /// (MemoizationApplicable; silently ignored otherwise) and byte-identical
  /// to the unmemoized enumeration either way — including truncation and
  /// every counter — for every thread count.
  bool memoize = false;
  /// Entry budget for the transposition table; exceeding it triggers the
  /// cost-aware eviction sweep (repair/memo.h) — cheap-to-recompute
  /// entries go first, results stay byte-identical.
  size_t memo_max_entries = TranspositionTable::kDefaultMaxEntries;
  /// Byte budget for the transposition table (0 = no byte budget).
  size_t memo_max_bytes = 0;
  /// Cross-query persistence (repair/repair_cache.h): when set (and
  /// memoize is on and applicable), the enumeration asks this cache for
  /// the persistent table of its (db, constraints, generator, pruning)
  /// root instead of building a per-call scratch table, so later queries
  /// over the same root replay this walk's completed subtrees. Not owned.
  /// The per-root budgets come from the cache's own options; memo_stats
  /// then reports the shared table's counter deltas across this call —
  /// which include activity from any query running concurrently on the
  /// same root (single-query-at-a-time callers get exactly their own).
  RepairSpaceCache* cache = nullptr;
};

/// One operational repair with its probability.
struct RepairInfo {
  Database repair;
  Rational probability;
  /// Number of successful sequences s with s(D) = repair.
  size_t num_sequences = 0;
};

struct EnumerationResult {
  /// [[D]]_MΣ: repairs with positive probability, most probable first
  /// (ties broken by database order for determinism).
  std::vector<RepairInfo> repairs;
  /// Σ probabilities of successful absorbing states (the CP denominator).
  Rational success_mass;
  /// Σ probabilities of failing absorbing states.
  Rational failing_mass;
  size_t states_visited = 0;
  size_t absorbing_states = 0;
  size_t successful_sequences = 0;
  size_t failing_sequences = 0;
  size_t max_depth = 0;
  /// True when max_states was hit; masses are then lower bounds.
  bool truncated = false;
  /// Transposition-table counters (all zero when memoization was off or
  /// not applicable). Purely observational — hit patterns vary with
  /// thread scheduling while results never do.
  MemoStats memo_stats;

  /// Indices into `repairs` in database (value) order, built by
  /// EnumerateRepairs so ProbabilityOf can binary-search. Hand-assembled
  /// results may leave it empty; ProbabilityOf then falls back to a scan.
  std::vector<uint32_t> repairs_by_database;

  /// Probability of a specific repair (0 when absent). O(log n) via
  /// repairs_by_database.
  Rational ProbabilityOf(const Database& repair) const;
};

/// Walks MΣ(D) and returns the full repair distribution.
EnumerationResult EnumerateRepairs(const Database& db,
                                   const ConstraintSet& constraints,
                                   const ChainGenerator& generator,
                                   const EnumerationOptions& options = {});

/// Renders the chain as an indented tree (the figure of Section 3) up to
/// `max_depth`. Intended for small teaching instances.
std::string RenderChainTree(const Database& db,
                            const ConstraintSet& constraints,
                            const ChainGenerator& generator,
                            size_t max_depth = 8);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_REPAIR_ENUMERATOR_H_
