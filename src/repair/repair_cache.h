// RepairSpaceCache — the repair space, cached across queries.
//
// The operational semantics (Calautti, Livshits & Pieris, PODS 2018)
// fixes the repairing Markov chain by the database and the constraints
// alone; a query only *reads* the resulting distribution. Workloads that
// ask many queries over one fixed inconsistent database — the setting of
// the uniform-operational-CQA and combined-approximation follow-ups
// (arXiv:2204.10592, 2312.08038) — therefore recompute the identical
// repair space once per query. This subsystem owns TranspositionTables
// (repair/memo.h) at the engine/session level and hands the same table to
// every enumeration over the same root, so the second query over a
// database replays the first query's completed subtrees — typically the
// whole chain, collapsed to one root-entry replay.
//
// ## Staleness is impossible by construction
//
// Tables are keyed by a root fingerprint — db hash ⊕ constraint-set
// digest hash ⊕ generator identity ⊕ the pruning flag — and every
// component is *verified* (full database equality, rendered-constraint
// equality, identity-string equality) before a table is handed out, so a
// 64-bit collision can create a fresh root, never a wrong hit. Mutating a
// database changes its hash: subsequent queries simply fingerprint to a
// new root. InvalidateDatabase additionally drops the superseded roots
// eagerly so their memory is reclaimed before the LRU would get to them.
//
// ## Generator identity
//
// A table records subtree outcomes *including edge probabilities*, so
// two generator instances may only share a table when they define the
// same distribution. ChainGenerator::cache_identity() encodes exactly
// that: built-ins serialize their full parameterization; generators that
// return the empty identity (the default, and any user lambda that does
// not opt in) never get a persistent table — callers fall back to the
// per-call scratch table, which is always sound.
//
// ## Disk tier (PR 5, v2 in PR 9)
//
// With `snapshot_dir` set, the cache grows a second, durable tier
// (src/storage/): when a root demotes out of memory — and on explicit
// Persist() or destruction — the root's table is serialized to a
// canonical snapshot (storage/canonical.h: symbolic facts, no process-
// local ids or hashes) and published atomically by a SnapshotStore; when
// a root fingerprint misses in memory, the disk tier is probed before
// computing cold, and a verified snapshot is re-interned into the live
// FactStore — so a *fresh process* warm-starts from a previous process's
// chain walks. Spills run on the shared util/parallel.h pool so queries
// never wait on the disk; restores happen inline on the (per-root, rare)
// miss path. A corrupt, truncated, version-mismatched or
// identity-mismatched snapshot is rejected by verification and simply
// means cold compute — the disk tier can change how fast answers arrive,
// never what they are.
//
// Storage v2 cuts the tier's write amplification and unifies residency:
//
//   * Delta spills. Once a root's base snapshot exists, a spill appends
//     only the entries stamped since the last spill (the memo's
//     admission-sequence clock, TranspositionTable::ForEachSince) as one
//     CRC-framed record to the root's delta log, instead of rewriting
//     the whole base. The log compacts back into a fresh base once it
//     outgrows `log_compaction_ratio` of the base (and after any append
//     failure or torn-tail restore). Restore = base + valid log prefix,
//     each entry re-verified exactly like base entries — never cold just
//     because a tail record tore.
//   * One residency model. Memory and disk are two residency levels of
//     the same state, not a cache and a backup. Dropping a root from
//     memory is a *demotion* (its table keeps serving from disk);
//     restoring one is a *promotion*. The victim when either the root
//     count or `max_memory_bytes` overflows is picked by retention score
//     — what dropping costs (cheap restore for clean-on-disk roots, full
//     recompute otherwise) per tick of idleness — so a hot disk-backed
//     root is pinned back while a cold dirty one spills early.

#ifndef OPCQA_REPAIR_REPAIR_CACHE_H_
#define OPCQA_REPAIR_REPAIR_CACHE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "repair/memo.h"
#include "storage/snapshot_store.h"

namespace opcqa {

struct RepairCacheOptions {
  /// Per-root transposition-table budgets (repair/memo.h eviction).
  size_t max_entries_per_root = TranspositionTable::kDefaultMaxEntries;
  /// 0 disables the per-root byte budget.
  size_t max_bytes_per_root = 0;
  /// Distinct (database, constraints, generator) roots kept live; the
  /// least-recently-used root is dropped beyond this.
  size_t max_roots = 8;
  /// Directory of the disk tier (storage/snapshot_store.h); empty keeps
  /// the cache memory-only (the PR-4 behavior).
  std::string snapshot_dir;
  /// Spill a root's table when it demotes out of memory and on
  /// destruction (only meaningful with a snapshot_dir; explicit
  /// Persist() always spills).
  bool spill_on_evict = true;
  /// Byte budget for the snapshot directory (bases + delta logs),
  /// enforced oldest-root-first after every spill; 0 disables disk GC.
  size_t max_disk_bytes = 0;
  /// Append-only delta spills: once a root's base snapshot exists, a
  /// spill writes only the entries admitted since the last spill to the
  /// root's delta log. Off = every spill rewrites the whole base (the
  /// PR-5 behavior, in the v2 encoding).
  bool delta_spill = true;
  /// Compact the delta log back into a fresh base once its size exceeds
  /// this fraction of the base snapshot's size. <= 0 compacts on every
  /// spill (a log never survives); large values let the log grow long —
  /// restores pay proportionally more decode.
  double log_compaction_ratio = 0.5;
  /// Global byte budget across every live root's table; 0 disables.
  /// Overflow demotes the lowest-retention-score root early, before the
  /// max_roots limit would.
  size_t max_memory_bytes = 0;
  /// Persistent tables normally require a key to miss twice before its
  /// subtree is recorded (the PR-5 churn filter for disk-backed sweeps).
  /// A serving front end that batches many same-root requests behind one
  /// walk turns this off, so the first walk admits the whole chain and
  /// every later request in the batch replays from the root entry
  /// (results are byte-identical either way; only hit/insert patterns
  /// and sweep churn differ).
  bool admission_filter = true;
  /// Disk-tier circuit breaker: after this many *consecutive*
  /// restore/spill failures the tier disables itself for
  /// breaker_cooldown_ms and the cache runs memory-only (loudly),
  /// instead of paying a failing probe per miss. 0 disables the breaker.
  /// After the cooldown one probe is let through (half-open): a success
  /// closes the breaker, another failure re-trips it immediately.
  int breaker_failure_threshold = 3;
  uint64_t breaker_cooldown_ms = 5000;
};

/// Counters of the disk tier. All monotone; zero when no snapshot_dir.
struct DiskTierStats {
  uint64_t spills = 0;         // snapshots written
  uint64_t spill_bytes = 0;    // bytes written across all spills
  uint64_t restores = 0;       // snapshots verified + re-interned
  uint64_t restore_bytes = 0;  // bytes of the restored snapshots
  /// Snapshots rejected by verification (corruption, truncation, version
  /// or identity mismatch) or by IO errors — each one fell back to cold
  /// compute.
  uint64_t rejected_snapshots = 0;
  /// Spill attempts whose write failed (unwritable/full snapshot_dir) —
  /// the next process will compute cold.
  uint64_t failed_spills = 0;
  /// Snapshots that failed verification twice and were moved to the
  /// store's quarantine/ directory — never re-probed until re-spilled.
  uint64_t quarantined = 0;
  /// Transient store write failures absorbed by retry-with-backoff.
  uint64_t put_retries = 0;
  /// Crashed-writer temp files removed by the store's stale sweep.
  uint64_t swept_temps = 0;
  /// Times the circuit breaker tripped (tier disabled for a cooldown).
  uint64_t breaker_trips = 0;
  /// Restores/spills skipped because the breaker was open.
  uint64_t breaker_skips = 0;
  /// Delta records appended to per-root logs (spills that did NOT
  /// rewrite the base).
  uint64_t delta_appends = 0;
  /// Delta logs compacted back into a fresh base snapshot.
  uint64_t compactions = 0;
  /// Total bytes written to the disk tier in the compressed v2 encoding
  /// (base snapshots + delta records) — the write-amplification figure
  /// the pr9_disk_delta_ms bench gates. spill_bytes counts base
  /// snapshots only.
  uint64_t compressed_bytes = 0;
  /// Disk-resident roots promoted back into the memory tier (every one
  /// is also counted in `restores`).
  uint64_t promotions = 0;
  /// Roots demoted out of the memory tier with their state kept (or
  /// being written) on disk. Drops without a disk tier are plain
  /// evictions, not demotions.
  uint64_t demotions = 0;
};

/// Session-level owner of persistent transposition tables, shared across
/// successive queries (and across threads: TableFor is mutex-guarded and
/// the tables themselves are striped). Results computed through a cached
/// table are byte-identical to uncached computation — the cache can only
/// change how fast they arrive.
class RepairSpaceCache {
 public:
  explicit RepairSpaceCache(RepairCacheOptions options = {});
  /// Spills every live root to the disk tier (when configured with
  /// spill_on_evict) and waits for in-flight background spills.
  ~RepairSpaceCache();

  RepairSpaceCache(const RepairSpaceCache&) = delete;
  RepairSpaceCache& operator=(const RepairSpaceCache&) = delete;

  /// The persistent table for this exact (db, constraints, generator,
  /// pruning) root, created on first use — restored from the disk tier
  /// when a verified snapshot exists. Returns nullptr when the
  /// generator declines a cache identity — the caller should fall back
  /// to a per-call scratch table. Callers are responsible for the
  /// MemoizationApplicable gate, as with any table.
  std::shared_ptr<TranspositionTable> TableFor(
      const Database& db, const ConstraintSet& constraints,
      const ChainGenerator& generator, bool prune_zero_probability);

  /// True when this exact root is resident in the memory tier. A pure
  /// probe: no LRU touch, no disk restore, no root creation — the
  /// serving front end's cache-pressure check (a non-resident root under
  /// pressure computes on a private table instead of evicting a live
  /// root; see server/ocqa_server.h). Always false for generators that
  /// decline a cache identity.
  bool HasRoot(const Database& db, const ConstraintSet& constraints,
               const ChainGenerator& generator,
               bool prune_zero_probability) const;

  /// Spills every live root to the disk tier now and blocks until the
  /// snapshots are durable (no-op without a snapshot_dir). Safe to call
  /// concurrently with queries: each snapshot is a consistent
  /// point-in-time view of its table.
  void Persist();

  DiskTierStats disk_stats() const;

  /// Eagerly drops every root built over a database with this content
  /// (by hash, then verified). Pass the database *as its roots saw it* —
  /// i.e. call BEFORE mutating it in place, or keep a pre-mutation copy:
  /// a post-mutation instance hashes differently and matches nothing.
  /// (Staleness needs no invalidation at all — a mutated database
  /// fingerprints to a new root — this only reclaims memory early.)
  /// Returns the number of roots dropped.
  size_t InvalidateDatabase(const Database& db);
  /// Same, by hash only — the post-mutation recipe: capture db.Hash()
  /// before mutating, then drop the old roots by that hash (what
  /// engine::OcqaSession does). A colliding innocent root costs
  /// recomputation, never correctness.
  size_t InvalidateDatabaseHash(size_t db_hash);

  void Clear();

  size_t roots() const;
  /// Aggregated counters over all live roots.
  MemoStats TotalStats() const;

 private:
  struct Root {
    size_t fingerprint = 0;
    size_t db_hash = 0;
    Database db;                     // verification payloads
    std::string constraints_digest;
    std::string generator_identity;
    bool prune = false;
    uint64_t last_used = 0;
    std::shared_ptr<TranspositionTable> table;
    /// True once a base snapshot for this root exists on disk (written
    /// by a spill, or found there by the restore) — the precondition for
    /// appending delta records instead of rewriting the base.
    bool base_on_disk = false;
    /// Admission-sequence stamp (TranspositionTable::sequence) through
    /// which the on-disk state — base plus delta log — is current. A
    /// spill whose table still sits at this stamp has nothing new to say
    /// and is skipped, so a read-only warm process never rewrites its
    /// snapshot and an explicit Persist() followed by session close
    /// writes once, not twice.
    uint64_t spilled_through_seq = 0;
    /// Size of the last written/restored base snapshot and of the
    /// current delta log — the compaction-ratio inputs. Advisory (policy
    /// only): staleness can mistime a compaction, never corrupt one.
    size_t base_bytes = 0;
    size_t log_bytes = 0;
    /// The next spill must rewrite the base and drop the log: set after
    /// a failed append (the log may end mid-record) and after a restore
    /// that hit a torn log tail.
    bool force_compaction = false;
  };

  /// What RestoreFromDisk hands back besides the table: the numbers the
  /// installed Root and the stats counters need.
  struct RestoredDisk {
    std::shared_ptr<TranspositionTable> table;
    size_t bytes = 0;       // base + applied log bytes (restore_bytes)
    size_t base_bytes = 0;  // base snapshot alone
    size_t log_bytes = 0;   // applied delta log (0 when none)
    bool dirty_tail = false;  // log tail torn/corrupt → force compaction
  };

  /// Probes the disk tier for this root; a null `table` means miss or a
  /// rejected snapshot (counted). Restores the base snapshot, then
  /// applies the delta log's valid prefix on top (same per-entry
  /// verification; a torn tail sets dirty_tail, an unverifiable log head
  /// is ignored wholesale — base-only, never cold). Called without
  /// mutex_ held — decode can be slow and verification needs no cache
  /// state. The caller counts the restore/promotion only once the table
  /// actually wins installation (a concurrent loser's decode must not
  /// inflate DiskTierStats).
  RestoredDisk RestoreFromDisk(const Database& db,
                               const ConstraintSet& constraints,
                               const std::string& digest,
                               const std::string& identity, bool prune);
  /// Enqueues a spill on the shared pool (the background writer); the
  /// task renders, encodes and writes without blocking queries. Takes
  /// the root by value (callers move their copy in). Must be called
  /// without mutex_ held: on a pool worker the task runs inline and
  /// itself acquires mutex_ to mark the root clean.
  void SpillAsync(Root root);
  /// Blocks until every enqueued spill has completed.
  void DrainSpills();

  /// Circuit breaker: true when the disk tier may be used right now
  /// (closed, or half-open after the cooldown). Counts a skip when
  /// false.
  bool DiskTierAvailable();
  /// Records a restore/spill failure; trips the breaker at the
  /// configured threshold of consecutive failures.
  void NoteDiskFailure();
  /// Any successful disk interaction closes the breaker's failure run.
  void NoteDiskSuccess();

  /// The unified residency cost model: what dropping this root now costs
  /// per tick it has sat idle. Clean-on-disk roots lose only a cheap
  /// restore (their resident footprint); dirty or disk-less roots lose
  /// the recorded chain walks (full payload bytes — recompute cost).
  /// Requires mutex_.
  double RetentionScoreLocked(const Root& root) const;
  /// Moves demotion victims out of roots_ (lowest retention score first)
  /// until both the root-count and max_memory_bytes budgets fit.
  /// Requires mutex_; callers spill the victims after unlocking.
  void CollectDemotionsLocked(std::vector<Root>* victims);

  RepairCacheOptions options_;
  std::unique_ptr<storage::SnapshotStore> store_;  // null without disk tier
  mutable std::mutex mutex_;
  uint64_t tick_ = 0;
  std::vector<Root> roots_;

  // Disk-tier counters + in-flight spill tracking (independent of mutex_
  // so a slow spill never blocks TableFor).
  std::atomic<uint64_t> spills_{0};
  std::atomic<uint64_t> spill_bytes_{0};
  std::atomic<uint64_t> restores_{0};
  std::atomic<uint64_t> restore_bytes_{0};
  std::atomic<uint64_t> rejected_snapshots_{0};
  std::atomic<uint64_t> failed_spills_{0};
  std::atomic<uint64_t> delta_appends_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compressed_bytes_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> breaker_trips_{0};
  std::atomic<uint64_t> breaker_skips_{0};
  /// Breaker state (separate from mutex_: spill tasks touch it and must
  /// never contend with TableFor's root scan).
  std::mutex breaker_mutex_;
  int consecutive_disk_failures_ = 0;
  std::chrono::steady_clock::time_point breaker_open_until_{};
  /// Serializes the encode→Put→clean-mark sequence of each spill task so
  /// concurrent spills of one root cannot publish out of order (a stale
  /// snapshot behind a newer clean mark).
  std::mutex spill_io_mutex_;
  std::mutex spill_mutex_;
  std::condition_variable spill_cv_;
  size_t pending_spills_ = 0;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_REPAIR_CACHE_H_
