// RepairSpaceCache — the repair space, cached across queries.
//
// The operational semantics (Calautti, Livshits & Pieris, PODS 2018)
// fixes the repairing Markov chain by the database and the constraints
// alone; a query only *reads* the resulting distribution. Workloads that
// ask many queries over one fixed inconsistent database — the setting of
// the uniform-operational-CQA and combined-approximation follow-ups
// (arXiv:2204.10592, 2312.08038) — therefore recompute the identical
// repair space once per query. This subsystem owns TranspositionTables
// (repair/memo.h) at the engine/session level and hands the same table to
// every enumeration over the same root, so the second query over a
// database replays the first query's completed subtrees — typically the
// whole chain, collapsed to one root-entry replay.
//
// ## Staleness is impossible by construction
//
// Tables are keyed by a root fingerprint — db hash ⊕ constraint-set
// digest hash ⊕ generator identity ⊕ the pruning flag — and every
// component is *verified* (full database equality, rendered-constraint
// equality, identity-string equality) before a table is handed out, so a
// 64-bit collision can create a fresh root, never a wrong hit. Mutating a
// database changes its hash: subsequent queries simply fingerprint to a
// new root. InvalidateDatabase additionally drops the superseded roots
// eagerly so their memory is reclaimed before the LRU would get to them.
//
// ## Generator identity
//
// A table records subtree outcomes *including edge probabilities*, so
// two generator instances may only share a table when they define the
// same distribution. ChainGenerator::cache_identity() encodes exactly
// that: built-ins serialize their full parameterization; generators that
// return the empty identity (the default, and any user lambda that does
// not opt in) never get a persistent table — callers fall back to the
// per-call scratch table, which is always sound.

#ifndef OPCQA_REPAIR_REPAIR_CACHE_H_
#define OPCQA_REPAIR_REPAIR_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "repair/memo.h"

namespace opcqa {

struct RepairCacheOptions {
  /// Per-root transposition-table budgets (repair/memo.h eviction).
  size_t max_entries_per_root = TranspositionTable::kDefaultMaxEntries;
  /// 0 disables the per-root byte budget.
  size_t max_bytes_per_root = 0;
  /// Distinct (database, constraints, generator) roots kept live; the
  /// least-recently-used root is dropped beyond this.
  size_t max_roots = 8;
};

/// Session-level owner of persistent transposition tables, shared across
/// successive queries (and across threads: TableFor is mutex-guarded and
/// the tables themselves are striped). Results computed through a cached
/// table are byte-identical to uncached computation — the cache can only
/// change how fast they arrive.
class RepairSpaceCache {
 public:
  explicit RepairSpaceCache(RepairCacheOptions options = {});

  /// The persistent table for this exact (db, constraints, generator,
  /// pruning) root, created on first use. Returns nullptr when the
  /// generator declines a cache identity — the caller should fall back
  /// to a per-call scratch table. Callers are responsible for the
  /// MemoizationApplicable gate, as with any table.
  std::shared_ptr<TranspositionTable> TableFor(
      const Database& db, const ConstraintSet& constraints,
      const ChainGenerator& generator, bool prune_zero_probability);

  /// Eagerly drops every root built over a database with this content
  /// (by hash, then verified). Pass the database *as its roots saw it* —
  /// i.e. call BEFORE mutating it in place, or keep a pre-mutation copy:
  /// a post-mutation instance hashes differently and matches nothing.
  /// (Staleness needs no invalidation at all — a mutated database
  /// fingerprints to a new root — this only reclaims memory early.)
  /// Returns the number of roots dropped.
  size_t InvalidateDatabase(const Database& db);
  /// Same, by hash only — the post-mutation recipe: capture db.Hash()
  /// before mutating, then drop the old roots by that hash (what
  /// engine::OcqaSession does). A colliding innocent root costs
  /// recomputation, never correctness.
  size_t InvalidateDatabaseHash(size_t db_hash);

  void Clear();

  size_t roots() const;
  /// Aggregated counters over all live roots.
  MemoStats TotalStats() const;

 private:
  struct Root {
    size_t fingerprint = 0;
    size_t db_hash = 0;
    Database db;                     // verification payloads
    std::string constraints_digest;
    std::string generator_identity;
    bool prune = false;
    uint64_t last_used = 0;
    std::shared_ptr<TranspositionTable> table;
  };

  RepairCacheOptions options_;
  mutable std::mutex mutex_;
  uint64_t tick_ = 0;
  std::vector<Root> roots_;
};

}  // namespace opcqa

#endif  // OPCQA_REPAIR_REPAIR_CACHE_H_
