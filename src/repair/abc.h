// The classical Arenas–Bertossi–Chomicki repair semantics [ABC, PODS'99] —
// the baseline the operational framework is measured against, and the
// subject of Proposition 4 (every ABC repair is an operational repair under
// the uniform generator M^u).
//
// Two engines:
//  * Denial-only Σ (EGDs + DCs): ABC repairs are exactly the maximal
//    consistent subsets of D, i.e. D − H for the minimal hitting sets H of
//    the conflict hypergraph whose edges are the violation body images.
//    Complete and reasonably fast.
//  * General Σ (with TGDs): repairs may insert facts from B(D,Σ); we
//    brute-force ⊕-minimal consistent subsets of the base. Exponential in
//    |B(D,Σ)| and therefore gated behind a budget — intended for the small
//    didactic instances of the paper, not for scale.

#ifndef OPCQA_REPAIR_ABC_H_
#define OPCQA_REPAIR_ABC_H_

#include <set>
#include <vector>

#include "logic/query.h"
#include "relational/base.h"
#include "constraints/violation.h"
#include "util/status.h"

namespace opcqa {

class RepairSpaceCache;

struct AbcOptions {
  /// Upper bound on enumerated repairs / hitting-set branches.
  size_t max_candidates = 200000;
  /// Brute-force engine refuses bases with more facts than this (2^n
  /// subsets are enumerated).
  size_t max_base_facts = 22;
  /// Worker threads for the via-chain engine's uniform-chain walks
  /// (forwarded to EnumerationOptions::threads); 0 = DefaultThreads().
  size_t threads = 1;
  /// Shared-suffix memoization for the via-chain engine (forwarded to
  /// EnumerationOptions::memoize; results are identical either way).
  bool memoize = false;
  /// Cross-query repair-space persistence for the via-chain engine
  /// (forwarded to EnumerationOptions::cache; not owned). With a warm
  /// cache the uniform-chain walk replays instead of re-enumerating.
  RepairSpaceCache* cache = nullptr;
};

/// The conflict hypergraph of D w.r.t. denial-only Σ: one edge per
/// violation, the edge being the violation's body image.
std::vector<std::vector<Fact>> ConflictHypergraph(
    const Database& db, const ConstraintSet& constraints);

/// ABC repairs for denial-only Σ (CHECK-fails if Σ contains a TGD).
Result<std::vector<Database>> AbcSubsetRepairs(
    const Database& db, const ConstraintSet& constraints,
    const AbcOptions& options = {});

/// ABC repairs for arbitrary Σ by brute force over P(B(D,Σ)).
Result<std::vector<Database>> AbcRepairsBruteForce(
    const Database& db, const ConstraintSet& constraints,
    const AbcOptions& options = {});

/// ABC repairs computed as the ⊆-minimal-∆ leaves of the uniform repairing
/// chain. Correctness rests on Proposition 4 (every ABC repair is a
/// uniform-chain leaf) plus the downward-closure argument that a
/// minimal-∆ leaf cannot be dominated by a non-leaf consistent instance.
/// Use the hypergraph / brute-force engines as independent oracles in
/// tests; use this one when the base is too large to brute-force.
Result<std::vector<Database>> AbcRepairsViaChain(
    const Database& db, const ConstraintSet& constraints,
    const AbcOptions& options = {});

/// Dispatches: denial-only Σ → hypergraph; small base → brute force;
/// otherwise → via-chain.
Result<std::vector<Database>> AbcRepairs(const Database& db,
                                         const ConstraintSet& constraints,
                                         const AbcOptions& options = {});

/// Certain answers ∩_{D′ ∈ repairs} Q(D′) (empty set when there are no
/// repairs is the convention used for comparisons here).
std::set<Tuple> CertainAnswers(const std::vector<Database>& repairs,
                               const Query& query);

}  // namespace opcqa

#endif  // OPCQA_REPAIR_ABC_H_
