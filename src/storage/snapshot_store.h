// SnapshotStore — the directory layer of the disk tier: one file per
// cache root, named by the root's stable fingerprint.
//
// The store is deliberately dumb: it moves opaque snapshot bytes between
// memory and `directory` and never interprets them — all verification
// (magic, version, checksums, identity components) happens in
// storage/canonical.h, all policy (when to spill, when to probe) in
// repair/repair_cache.h. What the store does own:
//
//   * Atomic publication. Put() writes to a dot-prefixed temp file in the
//     same directory, flushes it to stable storage, and rename()s it into
//     place — readers (including other processes) see either the old
//     snapshot or the complete new one, never a torn write. A crash mid-
//     spill leaves only a temp file, which the stale-temp sweep removes.
//   * Bounded retry. Transient write/fsync/rename failures are retried
//     `put_retries` times with exponential backoff, each attempt with a
//     fresh temp file — a busy disk costs latency, not a lost spill.
//   * Quarantine. A snapshot the caller reports corrupt twice (via
//     MarkCorrupt) is moved to `<directory>/quarantine/` and its
//     fingerprint is never probed again until a fresh Put replaces it —
//     the corrupt bytes are kept for post-mortem instead of being
//     re-decoded on every miss or silently deleted.
//   * Delta-log append. Alongside the base snapshot a root may own an
//     append-only delta log (`root-<hex>.log`, format in
//     storage/canonical.h): AppendDelta() writes the log head on first
//     use and then one CRC-framed record per call, fsynced, in a single
//     write() each — a crash tears at most the last record, which the
//     reader's valid-prefix rule drops.
//   * Oldest-first GC. With max_disk_bytes > 0, every Put() and
//     AppendDelta() deletes the stalest *roots* (base + delta log
//     together, by base modification time) until the directory fits the
//     budget again. Both files count toward the budget, a root's log is
//     never orphaned by GC, and a log without a base is swept outright.
//     The just-written root is always kept, so a budget smaller than one
//     snapshot degrades to "keep the newest" instead of making the tier
//     useless.
//   * Crashed-writer sweep. Temp files older than `temp_max_age` are
//     removed at construction and before every GC pass, so a long-lived
//     process cannot count orphaned temps against its disk budget.
//
// Thread-safe: all members lock one mutex (spills come from a background
// writer while queries probe). Cross-process safety rests on the atomic
// rename plus canonical.h's verification — a concurrent writer can at
// worst make a reader fall back to cold compute.

#ifndef OPCQA_STORAGE_SNAPSHOT_STORE_H_
#define OPCQA_STORAGE_SNAPSHOT_STORE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "util/status.h"

namespace opcqa {
namespace storage {

struct SnapshotStoreOptions {
  /// Directory holding the snapshots (created on first Put).
  std::string directory;
  /// Byte budget for the directory; 0 disables GC. Enforced oldest-first
  /// after every Put, never deleting the file just written.
  size_t max_disk_bytes = 0;
  /// Extra attempts after a failed write/rename (0 = fail fast).
  int put_retries = 2;
  /// Backoff before retry k is retry_backoff_ms << (k - 1).
  uint64_t retry_backoff_ms = 1;
  /// A temp file older than this is a crashed writer's leftover, not an
  /// in-flight spill, and may be swept by any process.
  std::chrono::seconds temp_max_age = std::chrono::hours{1};
};

/// Counters for the hardening paths; plumbed into DiskTierStats by the
/// repair cache.
struct SnapshotStoreStats {
  /// Put attempts that failed and were retried (not counting the final
  /// failure of an exhausted Put).
  uint64_t put_retries = 0;
  /// Fingerprints moved to quarantine/ after two corruption strikes.
  uint64_t quarantined = 0;
  /// Crashed-writer temp files removed by the stale sweep.
  uint64_t swept_temps = 0;
};

class SnapshotStore {
 public:
  explicit SnapshotStore(SnapshotStoreOptions options);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// "root-<16 hex digits>.snap" — the canonical snapshot file name.
  static std::string FileName(uint64_t fingerprint);

  /// "root-<16 hex digits>.log" — the root's delta-log file name.
  static std::string LogFileName(uint64_t fingerprint);

  /// Subdirectory (under the store directory) holding quarantined
  /// snapshots.
  static constexpr const char* kQuarantineDirName = "quarantine";

  /// Atomically publishes `bytes` as the snapshot for `fingerprint`
  /// (temp file + fsync + rename, with bounded retry), then runs the
  /// stale-temp sweep and the GC sweep. Clears any corruption strikes
  /// or quarantine for `fingerprint` — new bytes get a clean slate.
  Status Put(uint64_t fingerprint, const std::string& bytes);

  /// The stored bytes for `fingerprint`; NotFound when no snapshot
  /// exists or the fingerprint is quarantined. IO errors surface as
  /// statuses, never aborts.
  Result<std::string> Get(uint64_t fingerprint) const;

  /// Records that the caller failed to verify/decode the snapshot for
  /// `fingerprint`. On the second strike the file is moved to
  /// quarantine/ and the fingerprint is never probed again (Get returns
  /// NotFound) until a fresh Put replaces it.
  void MarkCorrupt(uint64_t fingerprint);

  /// True once `fingerprint` has been quarantined (and not re-Put).
  bool IsQuarantined(uint64_t fingerprint) const;

  /// Appends `record` to the root's delta log, creating the file with
  /// `head` first when it does not exist (or is empty). Head+record (or
  /// record alone) go down in one write() followed by fsync, so a crash
  /// tears at most the tail record. No retry: a failed append leaves the
  /// log possibly mid-record — the caller should force a compaction,
  /// which rewrites the base and deletes the log. Quarantined roots
  /// reject appends. Runs the same sweeps as Put().
  Status AppendDelta(uint64_t fingerprint, const std::string& head,
                     const std::string& record);

  /// The root's delta-log bytes; NotFound when no log exists or the
  /// root is quarantined. A missing log is the common case (freshly
  /// compacted root), not an error worth logging.
  Result<std::string> GetLog(uint64_t fingerprint) const;

  /// Removes the root's delta log (no-op when absent) — called after a
  /// compaction publishes a fresh base that supersedes the log.
  void DeleteLog(uint64_t fingerprint);

  /// Size in bytes of the root's delta log, 0 when absent.
  size_t LogBytes(uint64_t fingerprint) const;

  /// Total bytes of committed snapshots AND delta logs currently in the
  /// directory (temp files and the quarantine subdirectory excluded).
  /// 0 when the directory does not exist.
  size_t TotalBytes() const;

  SnapshotStoreStats Stats() const;

  const std::string& directory() const { return options_.directory; }

 private:
  /// One write-temp + rename attempt; removes its temp file on failure.
  Status PutAttemptLocked(uint64_t fingerprint, const std::string& bytes);
  /// Removes temp files older than temp_max_age.
  void SweepStaleTempsLocked();
  /// Deletes whole roots (base + log) oldest-first by base mtime — never
  /// the root named `keep_stem` — until within max_disk_bytes; sweeps
  /// orphan logs (log without base) first.
  void GarbageCollectLocked(const std::string& keep_stem);

  SnapshotStoreOptions options_;
  mutable std::mutex mutex_;
  /// Corruption strikes per fingerprint; erased on Put.
  std::map<uint64_t, int> corrupt_strikes_;
  /// Fingerprints moved to quarantine/; never probed until re-Put.
  std::set<uint64_t> quarantined_;
  SnapshotStoreStats stats_;
};

}  // namespace storage
}  // namespace opcqa

#endif  // OPCQA_STORAGE_SNAPSHOT_STORE_H_
