// SnapshotStore — the directory layer of the disk tier: one file per
// cache root, named by the root's stable fingerprint.
//
// The store is deliberately dumb: it moves opaque snapshot bytes between
// memory and `directory` and never interprets them — all verification
// (magic, version, checksums, identity components) happens in
// storage/canonical.h, all policy (when to spill, when to probe) in
// repair/repair_cache.h. What the store does own:
//
//   * Atomic publication. Put() writes to a dot-prefixed temp file in the
//     same directory, flushes it to stable storage, and rename()s it into
//     place — readers (including other processes) see either the old
//     snapshot or the complete new one, never a torn write. A crash mid-
//     spill leaves only a temp file, which Put() lazily sweeps.
//   * Oldest-first GC. With max_disk_bytes > 0, every Put() deletes the
//     stalest snapshots (by modification time) until the directory fits
//     the budget again; the just-written file is always kept, so a budget
//     smaller than one snapshot degrades to "keep the newest" instead of
//     making the tier useless.
//
// Thread-safe: all members lock one mutex (spills come from a background
// writer while queries probe). Cross-process safety rests on the atomic
// rename plus canonical.h's verification — a concurrent writer can at
// worst make a reader fall back to cold compute.

#ifndef OPCQA_STORAGE_SNAPSHOT_STORE_H_
#define OPCQA_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace opcqa {
namespace storage {

struct SnapshotStoreOptions {
  /// Directory holding the snapshots (created on first Put).
  std::string directory;
  /// Byte budget for the directory; 0 disables GC. Enforced oldest-first
  /// after every Put, never deleting the file just written.
  size_t max_disk_bytes = 0;
};

class SnapshotStore {
 public:
  explicit SnapshotStore(SnapshotStoreOptions options);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// "root-<16 hex digits>.snap" — the canonical snapshot file name.
  static std::string FileName(uint64_t fingerprint);

  /// Atomically publishes `bytes` as the snapshot for `fingerprint`
  /// (temp file + fsync + rename), then runs the GC sweep.
  Status Put(uint64_t fingerprint, const std::string& bytes);

  /// The stored bytes for `fingerprint`; NotFound when no snapshot
  /// exists. IO errors surface as statuses, never aborts.
  Result<std::string> Get(uint64_t fingerprint) const;

  /// Total bytes of committed snapshots currently in the directory
  /// (temp files excluded). 0 when the directory does not exist.
  size_t TotalBytes() const;

  const std::string& directory() const { return options_.directory; }

 private:
  /// Deletes oldest-first (never `keep`) until within max_disk_bytes.
  void GarbageCollectLocked(const std::string& keep);

  SnapshotStoreOptions options_;
  mutable std::mutex mutex_;
};

}  // namespace storage
}  // namespace opcqa

#endif  // OPCQA_STORAGE_SNAPSHOT_STORE_H_
