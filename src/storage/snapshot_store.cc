#include "storage/snapshot_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace opcqa {
namespace storage {

namespace fs = std::filesystem;

namespace {

constexpr char kSuffix[] = ".snap";
constexpr char kLogSuffix[] = ".log";
constexpr char kTempPrefix[] = ".tmp-";

/// True for a committed (non-dot-prefixed) file name ending in `suffix`.
bool HasStoreSuffix(const std::string& name, const char* suffix,
                    size_t suffix_len) {
  return name.size() > suffix_len &&
         name.compare(name.size() - suffix_len, suffix_len, suffix) == 0 &&
         name[0] != '.';
}

bool IsSnapshotFile(const fs::directory_entry& entry) {
  if (!entry.is_regular_file()) return false;
  std::string name = entry.path().filename().string();
  return HasStoreSuffix(name, kSuffix, sizeof(kSuffix) - 1);
}

bool IsLogFile(const fs::directory_entry& entry) {
  if (!entry.is_regular_file()) return false;
  std::string name = entry.path().filename().string();
  return HasStoreSuffix(name, kLogSuffix, sizeof(kLogSuffix) - 1);
}

/// "root-<16 hex digits>" — the shared stem of a root's base and log
/// file names, and the unit GC accounts and deletes by.
std::string StemFor(uint64_t fingerprint) {
  char name[32];
  std::snprintf(name, sizeof(name), "root-%016llx",
                static_cast<unsigned long long>(fingerprint));
  return name;
}

/// Writes `bytes` to `path` and flushes them to stable storage; the
/// subsequent rename() then publishes a fully-durable file.
Status WriteDurably(const fs::path& path, const std::string& bytes) {
  OPCQA_FAILPOINT("storage.snapshot_store.write");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create " + path.string());
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  ok = std::fflush(file) == 0 && ok;
  ok = ::fsync(::fileno(file)) == 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::error_code ignored;
    fs::remove(path, ignored);
    return Status::Internal("short write to " + path.string());
  }
  return Status::Ok();
}

}  // namespace

SnapshotStore::SnapshotStore(SnapshotStoreOptions options)
    : options_(std::move(options)) {
  // Sweep crashed-writer leftovers up front: a process that only ever
  // reads (warm start) must not trip over a predecessor's orphaned
  // temps, and a long-lived writer must not count them against its
  // budget until the first Put happens to run.
  std::lock_guard<std::mutex> lock(mutex_);
  SweepStaleTempsLocked();
}

std::string SnapshotStore::FileName(uint64_t fingerprint) {
  return StemFor(fingerprint) + kSuffix;
}

std::string SnapshotStore::LogFileName(uint64_t fingerprint) {
  return StemFor(fingerprint) + kLogSuffix;
}

Status SnapshotStore::PutAttemptLocked(uint64_t fingerprint,
                                       const std::string& bytes) {
  std::error_code error;
  fs::path dir(options_.directory);
  fs::create_directories(dir, error);
  if (error) {
    return Status::Internal("cannot create snapshot dir " +
                            options_.directory + ": " + error.message());
  }
  std::string final_name = FileName(fingerprint);
  // Same-directory temp file so the rename is atomic on every POSIX
  // filesystem; the pid + per-process sequence suffix keeps concurrent
  // writers — other processes AND other stores in this process — from
  // clobbering each other's in-flight files. A fresh name per attempt
  // also means a retry never collides with its own failed predecessor.
  static std::atomic<uint64_t> temp_sequence{0};
  std::string unique_suffix =
      "." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(temp_sequence.fetch_add(1, std::memory_order_relaxed));
  fs::path temp = dir / (kTempPrefix + final_name + unique_suffix);
  Status attempt = [&]() -> Status {
    Status written = WriteDurably(temp, bytes);
    if (!written.ok()) return written;
    OPCQA_FAILPOINT("storage.snapshot_store.rename");
    std::error_code rename_error;
    fs::rename(temp, dir / final_name, rename_error);
    if (rename_error) {
      return Status::Internal("cannot publish snapshot: " +
                              rename_error.message());
    }
    return Status::Ok();
  }();
  if (!attempt.ok()) {
    std::error_code ignored;
    fs::remove(temp, ignored);
    return attempt;
  }
  // The rename is only durable once the *directory entry* reaches stable
  // storage too.
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

Status SnapshotStore::Put(uint64_t fingerprint, const std::string& bytes) {
  OPCQA_TRACE_SPAN("storage.put");
  static obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("storage.put_ms");
  obs::ScopedTimer timer(latency);
  std::lock_guard<std::mutex> lock(mutex_);
  Status last;
  for (int attempt = 0;; ++attempt) {
    last = PutAttemptLocked(fingerprint, bytes);
    if (last.ok()) break;
    if (attempt >= options_.put_retries) return last;
    ++stats_.put_retries;
    uint64_t backoff_ms = options_.retry_backoff_ms << attempt;
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
  // Fresh bytes supersede any corruption history for this root.
  corrupt_strikes_.erase(fingerprint);
  quarantined_.erase(fingerprint);
  SweepStaleTempsLocked();
  GarbageCollectLocked(StemFor(fingerprint));
  return Status::Ok();
}

Status SnapshotStore::AppendDelta(uint64_t fingerprint,
                                  const std::string& head,
                                  const std::string& record) {
  OPCQA_TRACE_SPAN("storage.append");
  static obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("storage.append_ms");
  obs::ScopedTimer timer(latency);
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_.count(fingerprint) != 0) {
    return Status::Internal("root quarantined: " + LogFileName(fingerprint));
  }
  OPCQA_FAILPOINT("storage.snapshot_store.append");
  std::error_code error;
  fs::path dir(options_.directory);
  fs::create_directories(dir, error);
  if (error) {
    return Status::Internal("cannot create snapshot dir " +
                            options_.directory + ": " + error.message());
  }
  fs::path path = dir / LogFileName(fingerprint);
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot open delta log " + path.string());
  }
  off_t existing = ::lseek(fd, 0, SEEK_END);
  // Head + record (or record alone) in one buffer, so a crash can tear
  // only within the final record — which the reader's valid-prefix rule
  // drops — never leave a head-less log with live records after it.
  std::string buffer = existing <= 0 ? head + record : record;
  bool ok = true;
  size_t written = 0;
  while (written < buffer.size()) {
    ssize_t n = ::write(fd, buffer.data() + written, buffer.size() - written);
    if (n <= 0) {
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  ok = ::fsync(fd) == 0 && ok;
  ok = ::close(fd) == 0 && ok;
  if (!ok) {
    // Deliberately no retry and no truncate-back: the log may now end
    // mid-record, which readers already tolerate. The caller reacts by
    // forcing a compaction (fresh base via Put, then DeleteLog).
    return Status::Internal("short append to " + path.string());
  }
  if (existing <= 0) {
    // First append created the file: persist the directory entry, as
    // PutAttemptLocked does for renames.
    int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  SweepStaleTempsLocked();
  GarbageCollectLocked(StemFor(fingerprint));
  return Status::Ok();
}

Result<std::string> SnapshotStore::GetLog(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_.count(fingerprint) != 0) {
    return Status::NotFound("root quarantined: " + LogFileName(fingerprint));
  }
  fs::path path = fs::path(options_.directory) / LogFileName(fingerprint);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no delta log for " + LogFileName(fingerprint));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("cannot read " + path.string());
  }
  std::string bytes = buffer.str();
  OPCQA_FAILPOINT_CORRUPT("storage.snapshot_store.corrupt", &bytes);
  return bytes;
}

void SnapshotStore::DeleteLog(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ignored;
  fs::remove(fs::path(options_.directory) / LogFileName(fingerprint),
             ignored);
}

size_t SnapshotStore::LogBytes(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code error;
  uintmax_t size = fs::file_size(
      fs::path(options_.directory) / LogFileName(fingerprint), error);
  return error ? 0 : static_cast<size_t>(size);
}

Result<std::string> SnapshotStore::Get(uint64_t fingerprint) const {
  OPCQA_TRACE_SPAN("storage.get");
  static obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("storage.get_ms");
  obs::ScopedTimer timer(latency);
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_.count(fingerprint) != 0) {
    return Status::NotFound("snapshot quarantined: " + FileName(fingerprint));
  }
  OPCQA_FAILPOINT("storage.snapshot_store.read");
  fs::path path = fs::path(options_.directory) / FileName(fingerprint);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no snapshot for " + FileName(fingerprint));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("cannot read " + path.string());
  }
  std::string bytes = buffer.str();
  OPCQA_FAILPOINT_CORRUPT("storage.snapshot_store.corrupt", &bytes);
  return bytes;
}

void SnapshotStore::MarkCorrupt(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_.count(fingerprint) != 0) return;
  int strikes = ++corrupt_strikes_[fingerprint];
  if (strikes < 2) return;
  // Second strike: keep the bytes for post-mortem, stop probing them.
  corrupt_strikes_.erase(fingerprint);
  quarantined_.insert(fingerprint);
  ++stats_.quarantined;
  fs::path dir(options_.directory);
  fs::path quarantine = dir / kQuarantineDirName;
  std::error_code mkdir_error;
  fs::create_directories(quarantine, mkdir_error);
  // Base and delta log go together — a log whose base is quarantined
  // must not linger where GC would have to treat it as an orphan.
  for (const std::string& name :
       {FileName(fingerprint), LogFileName(fingerprint)}) {
    std::error_code error = mkdir_error;
    if (!error) {
      fs::rename(dir / name, quarantine / name, error);
    }
    if (error) {
      // Moving is best-effort; the in-memory set already blocks
      // re-probes.
      std::error_code ignored;
      fs::remove(dir / name, ignored);
    }
  }
  OPCQA_LOG(Warning) << "snapshot " << FileName(fingerprint)
                     << " failed verification twice; quarantined";
}

bool SnapshotStore::IsQuarantined(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.count(fingerprint) != 0;
}

size_t SnapshotStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code error;
  size_t total = 0;
  for (const auto& entry :
       fs::directory_iterator(options_.directory, error)) {
    if (!IsSnapshotFile(entry) && !IsLogFile(entry)) continue;
    std::error_code size_error;
    uintmax_t size = entry.file_size(size_error);
    if (!size_error) total += static_cast<size_t>(size);
  }
  return total;
}

SnapshotStoreStats SnapshotStore::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SnapshotStore::SweepStaleTempsLocked() {
  // Only *stale* temps go: any fresh one may be another writer's
  // in-flight file — another process, or another store in this process.
  // Our own paths never linger outside a crash (success renames, failure
  // removes).
  std::error_code error;
  for (const auto& entry :
       fs::directory_iterator(options_.directory, error)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(kTempPrefix, 0) != 0) continue;
    std::error_code stat_error;
    fs::file_time_type mtime = entry.last_write_time(stat_error);
    if (!stat_error &&
        fs::file_time_type::clock::now() - mtime > options_.temp_max_age) {
      std::error_code ignored;
      if (fs::remove(entry.path(), ignored)) ++stats_.swept_temps;
    }
  }
}

void SnapshotStore::GarbageCollectLocked(const std::string& keep_stem) {
  if (options_.max_disk_bytes == 0) return;
  OPCQA_TRACE_SPAN("storage.gc");
  static obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("storage.gc_ms");
  obs::ScopedTimer timer(latency);
  // The unit of accounting and deletion is the *root*: its base snapshot
  // plus its delta log. Deleting only the base would orphan a log (dead
  // bytes no future Put reclaims), and a log that escaped the byte count
  // would let the directory overshoot the budget by the log tier's whole
  // footprint.
  struct RootFiles {
    fs::path base;
    fs::path log;
    fs::file_time_type base_mtime{};
    size_t base_bytes = 0;
    size_t log_bytes = 0;
    bool has_base = false;
    bool has_log = false;
  };
  std::error_code error;
  std::map<std::string, RootFiles> roots;
  size_t total = 0;
  for (const auto& entry :
       fs::directory_iterator(options_.directory, error)) {
    bool is_base = IsSnapshotFile(entry);
    bool is_log = !is_base && IsLogFile(entry);
    if (!is_base && !is_log) continue;
    // Separate error codes: a failed file_size must not be masked by a
    // succeeding last_write_time (its uintmax_t(-1) would blow up the
    // total and GC the whole directory).
    std::error_code size_error;
    uintmax_t size = entry.file_size(size_error);
    if (size_error) continue;
    std::string name = entry.path().filename().string();
    std::string stem = name.substr(0, name.rfind('.'));
    RootFiles& root = roots[stem];
    total += static_cast<size_t>(size);
    if (is_base) {
      std::error_code time_error;
      fs::file_time_type mtime = entry.last_write_time(time_error);
      if (time_error) {
        roots.erase(stem);  // unstat-able root: leave it alone entirely
        continue;
      }
      root.base = entry.path();
      root.base_mtime = mtime;
      root.base_bytes = static_cast<size_t>(size);
      root.has_base = true;
    } else {
      root.log = entry.path();
      root.log_bytes = static_cast<size_t>(size);
      root.has_log = true;
    }
  }
  // Orphan logs (no base — a crashed compaction window, or droppings of
  // the pre-v2 GC) are dead weight: no restore will ever apply them, so
  // they go first, budget or not. Never the in-flight root's: its base
  // Put may be racing in another process.
  std::vector<std::pair<std::string, const RootFiles*>> candidates;
  for (auto it = roots.begin(); it != roots.end(); ++it) {
    if (!it->second.has_base) {
      if (it->first == keep_stem) continue;
      std::error_code ignored;
      if (fs::remove(it->second.log, ignored)) total -= it->second.log_bytes;
    } else {
      candidates.emplace_back(it->first, &it->second);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a.second->base_mtime < b.second->base_mtime;
            });
  for (const auto& [stem, root] : candidates) {
    if (total <= options_.max_disk_bytes) break;
    if (stem == keep_stem) continue;
    // Log before base: if the process dies between the two removes, the
    // survivor is a base without a log — a smaller, perfectly restorable
    // root — never an orphaned log.
    std::error_code ignored;
    if (root->has_log && fs::remove(root->log, ignored)) {
      total -= root->log_bytes;
    }
    if (fs::remove(root->base, ignored)) total -= root->base_bytes;
  }
}

}  // namespace storage
}  // namespace opcqa
