#include "storage/snapshot_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/logging.h"

namespace opcqa {
namespace storage {

namespace fs = std::filesystem;

namespace {

constexpr char kSuffix[] = ".snap";
constexpr char kTempPrefix[] = ".tmp-";

bool IsSnapshotFile(const fs::directory_entry& entry) {
  if (!entry.is_regular_file()) return false;
  std::string name = entry.path().filename().string();
  return name.size() > sizeof(kSuffix) - 1 &&
         name.compare(name.size() - (sizeof(kSuffix) - 1),
                      sizeof(kSuffix) - 1, kSuffix) == 0 &&
         name[0] != '.';
}

/// Writes `bytes` to `path` and flushes them to stable storage; the
/// subsequent rename() then publishes a fully-durable file.
Status WriteDurably(const fs::path& path, const std::string& bytes) {
  OPCQA_FAILPOINT("storage.snapshot_store.write");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create " + path.string());
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  ok = std::fflush(file) == 0 && ok;
  ok = ::fsync(::fileno(file)) == 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::error_code ignored;
    fs::remove(path, ignored);
    return Status::Internal("short write to " + path.string());
  }
  return Status::Ok();
}

}  // namespace

SnapshotStore::SnapshotStore(SnapshotStoreOptions options)
    : options_(std::move(options)) {
  // Sweep crashed-writer leftovers up front: a process that only ever
  // reads (warm start) must not trip over a predecessor's orphaned
  // temps, and a long-lived writer must not count them against its
  // budget until the first Put happens to run.
  std::lock_guard<std::mutex> lock(mutex_);
  SweepStaleTempsLocked();
}

std::string SnapshotStore::FileName(uint64_t fingerprint) {
  char name[32];
  std::snprintf(name, sizeof(name), "root-%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(name) + kSuffix;
}

Status SnapshotStore::PutAttemptLocked(uint64_t fingerprint,
                                       const std::string& bytes) {
  std::error_code error;
  fs::path dir(options_.directory);
  fs::create_directories(dir, error);
  if (error) {
    return Status::Internal("cannot create snapshot dir " +
                            options_.directory + ": " + error.message());
  }
  std::string final_name = FileName(fingerprint);
  // Same-directory temp file so the rename is atomic on every POSIX
  // filesystem; the pid + per-process sequence suffix keeps concurrent
  // writers — other processes AND other stores in this process — from
  // clobbering each other's in-flight files. A fresh name per attempt
  // also means a retry never collides with its own failed predecessor.
  static std::atomic<uint64_t> temp_sequence{0};
  std::string unique_suffix =
      "." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(temp_sequence.fetch_add(1, std::memory_order_relaxed));
  fs::path temp = dir / (kTempPrefix + final_name + unique_suffix);
  Status attempt = [&]() -> Status {
    Status written = WriteDurably(temp, bytes);
    if (!written.ok()) return written;
    OPCQA_FAILPOINT("storage.snapshot_store.rename");
    std::error_code rename_error;
    fs::rename(temp, dir / final_name, rename_error);
    if (rename_error) {
      return Status::Internal("cannot publish snapshot: " +
                              rename_error.message());
    }
    return Status::Ok();
  }();
  if (!attempt.ok()) {
    std::error_code ignored;
    fs::remove(temp, ignored);
    return attempt;
  }
  // The rename is only durable once the *directory entry* reaches stable
  // storage too.
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

Status SnapshotStore::Put(uint64_t fingerprint, const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status last;
  for (int attempt = 0;; ++attempt) {
    last = PutAttemptLocked(fingerprint, bytes);
    if (last.ok()) break;
    if (attempt >= options_.put_retries) return last;
    ++stats_.put_retries;
    uint64_t backoff_ms = options_.retry_backoff_ms << attempt;
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
  // Fresh bytes supersede any corruption history for this root.
  corrupt_strikes_.erase(fingerprint);
  quarantined_.erase(fingerprint);
  SweepStaleTempsLocked();
  GarbageCollectLocked(FileName(fingerprint));
  return Status::Ok();
}

Result<std::string> SnapshotStore::Get(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_.count(fingerprint) != 0) {
    return Status::NotFound("snapshot quarantined: " + FileName(fingerprint));
  }
  OPCQA_FAILPOINT("storage.snapshot_store.read");
  fs::path path = fs::path(options_.directory) / FileName(fingerprint);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no snapshot for " + FileName(fingerprint));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("cannot read " + path.string());
  }
  std::string bytes = buffer.str();
  OPCQA_FAILPOINT_CORRUPT("storage.snapshot_store.corrupt", &bytes);
  return bytes;
}

void SnapshotStore::MarkCorrupt(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (quarantined_.count(fingerprint) != 0) return;
  int strikes = ++corrupt_strikes_[fingerprint];
  if (strikes < 2) return;
  // Second strike: keep the bytes for post-mortem, stop probing them.
  corrupt_strikes_.erase(fingerprint);
  quarantined_.insert(fingerprint);
  ++stats_.quarantined;
  std::string name = FileName(fingerprint);
  fs::path dir(options_.directory);
  fs::path quarantine = dir / kQuarantineDirName;
  std::error_code error;
  fs::create_directories(quarantine, error);
  if (!error) {
    fs::rename(dir / name, quarantine / name, error);
  }
  if (error) {
    // Moving is best-effort; the in-memory set already blocks re-probes.
    std::error_code ignored;
    fs::remove(dir / name, ignored);
  }
  OPCQA_LOG(Warning) << "snapshot " << name
                     << " failed verification twice; quarantined";
}

bool SnapshotStore::IsQuarantined(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.count(fingerprint) != 0;
}

size_t SnapshotStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code error;
  size_t total = 0;
  for (const auto& entry :
       fs::directory_iterator(options_.directory, error)) {
    if (!IsSnapshotFile(entry)) continue;
    std::error_code size_error;
    uintmax_t size = entry.file_size(size_error);
    if (!size_error) total += static_cast<size_t>(size);
  }
  return total;
}

SnapshotStoreStats SnapshotStore::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SnapshotStore::SweepStaleTempsLocked() {
  // Only *stale* temps go: any fresh one may be another writer's
  // in-flight file — another process, or another store in this process.
  // Our own paths never linger outside a crash (success renames, failure
  // removes).
  std::error_code error;
  for (const auto& entry :
       fs::directory_iterator(options_.directory, error)) {
    std::string name = entry.path().filename().string();
    if (name.rfind(kTempPrefix, 0) != 0) continue;
    std::error_code stat_error;
    fs::file_time_type mtime = entry.last_write_time(stat_error);
    if (!stat_error &&
        fs::file_time_type::clock::now() - mtime > options_.temp_max_age) {
      std::error_code ignored;
      if (fs::remove(entry.path(), ignored)) ++stats_.swept_temps;
    }
  }
}

void SnapshotStore::GarbageCollectLocked(const std::string& keep) {
  if (options_.max_disk_bytes == 0) return;
  struct File {
    fs::path path;
    fs::file_time_type mtime;
    size_t bytes;
  };
  std::error_code error;
  std::vector<File> files;
  size_t total = 0;
  for (const auto& entry :
       fs::directory_iterator(options_.directory, error)) {
    if (!IsSnapshotFile(entry)) continue;
    // Separate error codes: a failed file_size must not be masked by a
    // succeeding last_write_time (its uintmax_t(-1) would blow up the
    // total and GC the whole directory).
    std::error_code size_error;
    uintmax_t size = entry.file_size(size_error);
    if (size_error) continue;
    std::error_code time_error;
    fs::file_time_type mtime = entry.last_write_time(time_error);
    if (time_error) continue;
    files.push_back({entry.path(), mtime, static_cast<size_t>(size)});
    total += static_cast<size_t>(size);
  }
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  for (const File& file : files) {
    if (total <= options_.max_disk_bytes) break;
    if (file.path.filename().string() == keep) continue;
    std::error_code ignored;
    if (fs::remove(file.path, ignored)) total -= file.bytes;
  }
}

}  // namespace storage
}  // namespace opcqa
