// Canonical (process-independent) serialization of repair-space cache
// roots — the byte format of the disk tier under RepairSpaceCache.
//
// FactIds are process-local: they are shard-tagged dense indices handed
// out by the process-global FactStore in intern order, and every hash the
// in-memory transposition table keys on (Database::Hash, Violation::Hash,
// the eliminated-set fingerprint) is a function of those ids. A snapshot
// that wrote raw ids would be meaningless to the next process. The
// canonical format therefore encodes *no id and no hash at all*:
//
//   * the chain-root database is rendered symbolically (predicate name +
//     rendered constant args, the deterministic Database::ToString order)
//     and doubles as the verification payload for the root fingerprint;
//   * every removed-fact set — the entry verification keys and the
//     per-repair delta payloads of repair/memo.h — is written as sorted
//     indices into the root's value-ordered fact list, which is the same
//     list in every process that holds an equal database;
//   * eliminated violations are written as (constraint index, bindings
//     rendered as variable-name → constant-name pairs); the constraint
//     index is stable because the rendered-constraint digest is part of
//     the verified identity;
//   * Rational masses are written as exact decimal "num/den" strings.
//
// The loader re-interns everything against the *live* process — facts
// resolve through the live sharded FactStore via the live database,
// variable and constant names through the live interners — and recomputes
// the StateKeys from live hashes, so a restored table is indistinguishable
// from one built by walking the chain in this process.
//
// ## Framing, versioning, checksums
//
// A snapshot is a fixed header (magic + format version) followed by
// sections, each with a length and a CRC-32 over its payload. Loading
// verifies the magic, the version, every section CRC and then every
// identity component *for real* (string equality against the live
// rendering, never hash equality); any mismatch — corruption, truncation,
// a format bump, an innocent fingerprint collision — makes DecodeSnapshot
// return an error status so callers fall back to cold computation. Decode
// never aborts the process on malformed input. (CRC-32 detects accidental
// corruption; the format is not authenticated against deliberate
// tampering — point snapshot_dir at a trusted location.)
//
// ## Versions and the delta log (PR 9)
//
// This build writes format v2 — varint integers, gap-coded removed-index
// sets, and a streaming string dictionary over the mass/name strings —
// and still restores v1 snapshots byte-for-byte-equivalently (the PR-5
// fixed-width encoding); versions above 2 are rejected, which a caller
// treats as cold compute. Alongside the base snapshot a root may carry a
// *delta log*: an append-only file of CRC-framed records, each holding
// only the entries admitted since the previous spill, so a warm root's
// Persist writes kilobytes instead of rewriting the whole snapshot. A
// torn or corrupt record ends log application at the last valid prefix —
// base plus prefix, never cold. The normative byte-level spec of both
// versions and the delta-record grammar lives in docs/SNAPSHOT_FORMAT.md;
// keep that document in lockstep with this file.

#ifndef OPCQA_STORAGE_CANONICAL_H_
#define OPCQA_STORAGE_CANONICAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "repair/memo.h"
#include "util/status.h"

namespace opcqa {
namespace storage {

/// The four verified components of a cache root's identity (see
/// repair/repair_cache.h): database content, constraint set, generator
/// parameterization, pruning flag — all rendered, never hashed.
struct SnapshotIdentity {
  std::string db_text;             // Database::ToString() of the chain root
  std::string constraints_digest;  // RenderConstraints(schema, Σ)
  std::string generator_identity;  // ChainGenerator::cache_identity()
  bool prune = false;
};

/// Deterministic rendering of Σ (one constraint per line). The single
/// definition shared by the in-memory root fingerprint and the snapshot
/// identity, so both tiers verify the same bytes.
std::string RenderConstraints(const Schema& schema,
                              const ConstraintSet& constraints);

/// 64-bit FNV-1a over the rendered identity components. Stable across
/// processes and builds (unlike std::hash), so it can name snapshot files.
/// Collisions are harmless: the loader verifies every component for real.
uint64_t StableFingerprint(const SnapshotIdentity& identity);

/// The newest on-disk format version: what EncodeSnapshot writes.
inline constexpr uint32_t kSnapshotFormatVersion = 2;
/// The oldest version DecodeSnapshot still restores (the PR-5 format).
inline constexpr uint32_t kMinSnapshotFormatVersion = 1;

/// Serializes the table's current entries (a point-in-time view; safe
/// while other threads keep inserting) into canonical snapshot bytes in
/// the newest format version. `root_db` must be the chain-root database
/// the table memoizes under — every stored removed id must resolve in it.
std::string EncodeSnapshot(const SnapshotIdentity& identity,
                           const Database& root_db,
                           const TranspositionTable& table);

/// The PR-5 v1 encoder, kept callable so the v1→v2 compatibility tests
/// (and the committed tests/fixtures snapshot) exercise the legacy
/// decode path against genuinely old bytes. Product code always writes
/// the newest version via EncodeSnapshot.
std::string EncodeSnapshotV1(const SnapshotIdentity& identity,
                             const Database& root_db,
                             const TranspositionTable& table);

/// Rebuilds a TranspositionTable from snapshot bytes against the live
/// process: verifies framing, CRCs and every identity component against
/// `expected` (whose fields must be rendered from the live root), then
/// re-interns each entry and recomputes its StateKey from live hashes.
/// The returned table has the given budgets and the restored entries;
/// its counters start fresh. Any validation failure returns a status —
/// callers treat it as a cache miss, never an abort.
Result<std::shared_ptr<TranspositionTable>> DecodeSnapshot(
    const std::string& bytes, const SnapshotIdentity& expected,
    const Database& live_root, const ConstraintSet& constraints,
    size_t max_entries, size_t max_bytes);

// ---------------------------------------------------------------------
// Delta log (format v2)
// ---------------------------------------------------------------------

/// The head a delta-log file starts with: log magic, format version, and
/// the full identity section — so a log is verified by string equality
/// exactly like a base snapshot before a single record applies (a
/// fingerprint collision in the file name can never alias roots through
/// the log either). Records are appended after the head.
std::string EncodeDeltaLogHead(const SnapshotIdentity& identity);

/// One CRC-framed delta record holding the still-resident table entries
/// stamped in (since_seq, upto_seq] (TranspositionTable::ForEachSince).
/// `*entry_count` gets the number of entries serialized; when it is 0 the
/// record carries nothing and need not be appended.
std::string EncodeDeltaRecord(const Database& root_db,
                              const TranspositionTable& table,
                              uint64_t since_seq, uint64_t upto_seq,
                              size_t* entry_count);

struct DeltaLogApplyResult {
  size_t records_applied = 0;
  size_t entries_applied = 0;
  /// False when a torn or corrupt record ended application early: the
  /// valid prefix IS applied (base + prefix, never cold), and the caller
  /// should compact the log away on its next spill.
  bool clean_tail = true;
};

/// Applies a delta log on top of a freshly restored base table: verifies
/// the log head (magic, version, identity string equality against
/// `expected`), then re-interns each record's entries into `table` in
/// append order. A bad head returns an error status and applies nothing
/// (the caller keeps the base-only table); a bad record merely stops
/// application at the valid prefix (`result->clean_tail = false`).
Status ApplyDeltaLog(const std::string& log_bytes,
                     const SnapshotIdentity& expected,
                     const Database& live_root,
                     const ConstraintSet& constraints,
                     TranspositionTable* table, DeltaLogApplyResult* result);

}  // namespace storage
}  // namespace opcqa

#endif  // OPCQA_STORAGE_CANONICAL_H_
