#include "storage/canonical.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <vector>

#include "logic/term.h"
#include "relational/symbol_table.h"
#include "util/hash.h"

namespace opcqa {
namespace storage {

namespace {

// ---------------------------------------------------------------------
// Framing primitives
// ---------------------------------------------------------------------

constexpr char kMagic[8] = {'O', 'P', 'C', 'Q', 'S', 'N', 'A', 'P'};
constexpr char kLogMagic[8] = {'O', 'P', 'C', 'Q', 'D', 'L', 'O', 'G'};
constexpr uint32_t kSectionIdentity = 1;
constexpr uint32_t kSectionEntries = 2;
constexpr uint32_t kSectionDelta = 3;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the ubiquitous choice for
/// detecting accidental corruption in storage formats.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(const char* data, size_t size) {
  const auto& table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Little-endian append-only writer. Fixed-width integers keep the
/// framing host-independent; Var() is unsigned LEB128 (7 bits per byte,
/// high bit = continuation), the v2 payload workhorse.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t value) { out_->push_back(static_cast<char>(value)); }
  void U32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
    }
  }
  void U64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
    }
  }
  void Var(uint64_t value) {
    while (value >= 0x80) {
      out_->push_back(static_cast<char>((value & 0x7Fu) | 0x80u));
      value >>= 7;
    }
    out_->push_back(static_cast<char>(value));
  }
  void Str(const std::string& text) {
    U32(static_cast<uint32_t>(text.size()));
    out_->append(text);
  }

 private:
  std::string* out_;
};

/// Bounds-checked little-endian reader: every accessor fails (sets a flag
/// and returns zero/empty) instead of reading past the end, so truncated
/// or length-corrupted snapshots surface as a clean decode error.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

  uint8_t U8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }
  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }
  /// Unsigned LEB128, capped at 10 bytes / 64 payload bits — an
  /// over-long or overflowing varint is corruption, not a value.
  uint64_t Var() {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Require(1)) return 0;
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if (shift == 63 && (byte & 0xFEu) != 0) {
        ok_ = false;  // bits beyond the 64th
        return 0;
      }
      value |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) return value;
    }
    ok_ = false;
    return 0;
  }
  std::string Str() {
    uint32_t size = U32();
    if (!Require(size)) return std::string();
    std::string text(data_ + pos_, size);
    pos_ += size;
    return text;
  }
  /// A raw sub-span (for section payloads); empty on overflow.
  std::pair<const char*, size_t> Span(size_t size) {
    if (!Require(size)) return {nullptr, 0};
    const char* begin = data_ + pos_;
    pos_ += size;
    return {begin, size};
  }

 private:
  bool Require(size_t bytes) {
    if (!ok_ || size_ - pos_ < bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void AppendSection(std::string* out, uint32_t id, const std::string& payload) {
  Writer writer(out);
  writer.U32(id);
  writer.U64(payload.size());
  writer.U32(Crc32(payload.data(), payload.size()));
  out->append(payload);
}

// ---------------------------------------------------------------------
// Streaming string dictionary (v2)
//
// The decimal num/den mass strings dominate a snapshot and repeat
// heavily (shared denominators across a chain's subtrees); variable and
// constant names repeat per violation. Strings are therefore emitted as
// a varint token into a dictionary built *while streaming*: a token
// below the current dictionary size reuses that string, a token equal
// to it defines the next string inline (length-prefixed, appended to
// the dictionary), anything larger is corruption. Encoder and decoder
// build identical dictionaries by construction — no dictionary section,
// no second pass over a possibly-mutating table.
// ---------------------------------------------------------------------

class StringDictEncoder {
 public:
  void Write(Writer* writer, const std::string& text) {
    auto [it, inserted] = index_.try_emplace(text, index_.size());
    writer->Var(it->second);
    if (inserted) writer->Str(text);
  }

 private:
  std::unordered_map<std::string, uint64_t> index_;
};

class StringDictDecoder {
 public:
  bool Read(Reader* reader, std::string* out) {
    uint64_t token = reader->Var();
    if (!reader->ok() || token > strings_.size()) return false;
    if (token == strings_.size()) {
      strings_.push_back(reader->Str());
      if (!reader->ok()) return false;
    }
    *out = strings_[token];
    return true;
  }

 private:
  std::vector<std::string> strings_;
};

// ---------------------------------------------------------------------
// Encode helpers
// ---------------------------------------------------------------------

/// The root's facts in value order — identical in every process holding an
/// equal database, which is what makes dictionary indices canonical.
std::vector<FactId> Dictionary(const Database& root_db) {
  return root_db.AllFactIds();
}

using FactIndexMap = std::unordered_map<FactId, uint32_t>;

FactIndexMap IndexOf(const std::vector<FactId>& dictionary) {
  FactIndexMap index_of;
  index_of.reserve(dictionary.size());
  for (uint32_t i = 0; i < dictionary.size(); ++i) {
    index_of.emplace(dictionary[i], i);
  }
  return index_of;
}

std::vector<uint32_t> RemovedIndices(const std::vector<FactId>& removed,
                                     const FactIndexMap& index_of) {
  // Ascending dictionary indices == fact value order, independent of the
  // process-local numeric id order the live table verifies in.
  std::vector<uint32_t> indices;
  indices.reserve(removed.size());
  for (FactId id : removed) {
    auto it = index_of.find(id);
    OPCQA_CHECK(it != index_of.end())
        << "memo entry removes a fact outside the chain root";
    indices.push_back(it->second);
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

void EncodeRemovedV1(Writer* writer, const std::vector<FactId>& removed,
                     const FactIndexMap& index_of) {
  std::vector<uint32_t> indices = RemovedIndices(removed, index_of);
  writer->U32(static_cast<uint32_t>(indices.size()));
  for (uint32_t index : indices) writer->U32(index);
}

/// v2: varint count, then the first index followed by gap-1 codes — a
/// strictly ascending set's gaps are >= 1, so the subtraction frees the
/// common dense-range case into single-byte varints.
void EncodeRemovedV2(Writer* writer, const std::vector<FactId>& removed,
                     const FactIndexMap& index_of) {
  std::vector<uint32_t> indices = RemovedIndices(removed, index_of);
  writer->Var(indices.size());
  uint32_t previous = 0;
  for (size_t i = 0; i < indices.size(); ++i) {
    writer->Var(i == 0 ? indices[0] : indices[i] - previous - 1);
    previous = indices[i];
  }
}

void EncodeViolationV1(Writer* writer, const Violation& violation) {
  writer->U32(static_cast<uint32_t>(violation.constraint_index));
  const auto& bindings = violation.h.bindings();
  writer->U32(static_cast<uint32_t>(bindings.size()));
  for (const auto& [var, value] : bindings) {
    writer->Str(VarName(var));
    writer->Str(ConstName(value));
  }
}

void EncodeViolationV2(Writer* writer, const Violation& violation,
                       StringDictEncoder* dict) {
  writer->Var(violation.constraint_index);
  const auto& bindings = violation.h.bindings();
  writer->Var(bindings.size());
  for (const auto& [var, value] : bindings) {
    dict->Write(writer, VarName(var));
    dict->Write(writer, ConstName(value));
  }
}

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("snapshot rejected: " + what);
}

/// Maps sorted dictionary indices back to live ids. Returns false on any
/// out-of-range or non-strictly-ascending index (corrupt payload).
bool DecodeRemovedV1(Reader* reader, const std::vector<FactId>& dictionary,
                     std::vector<FactId>* out) {
  uint32_t count = reader->U32();
  if (!reader->ok() || count > dictionary.size()) return false;
  out->clear();
  out->reserve(count);
  uint32_t previous = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t index = reader->U32();
    if (!reader->ok() || index >= dictionary.size()) return false;
    if (i > 0 && index <= previous) return false;
    previous = index;
    out->push_back(dictionary[index]);
  }
  return true;
}

bool DecodeRemovedV2(Reader* reader, const std::vector<FactId>& dictionary,
                     std::vector<FactId>* out) {
  uint64_t count = reader->Var();
  if (!reader->ok() || count > dictionary.size()) return false;
  out->clear();
  out->reserve(count);
  uint64_t index = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = reader->Var();
    // Bounding the gap first keeps index + gap + 1 from wrapping; any
    // valid gap is below the dictionary size.
    if (!reader->ok() || gap >= dictionary.size()) return false;
    index = i == 0 ? gap : index + gap + 1;
    if (index >= dictionary.size()) return false;
    out->push_back(dictionary[index]);
  }
  return true;
}

bool FinishViolation(std::vector<std::pair<VarId, ConstId>> pairs,
                     uint32_t constraint_index, Violation* out) {
  // Reject duplicate variables before Bind() (which would CHECK-fail) —
  // decode must degrade to cold compute, never abort.
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].first == pairs[i - 1].first) return false;
  }
  out->constraint_index = constraint_index;
  out->h = Assignment();
  for (const auto& [var, value] : pairs) out->h.Bind(var, value);
  return true;
}

bool DecodeViolationV1(Reader* reader, const ConstraintSet& constraints,
                       Violation* out) {
  uint32_t constraint_index = reader->U32();
  uint32_t bindings = reader->U32();
  if (!reader->ok() || constraint_index >= constraints.size()) return false;
  std::vector<std::pair<VarId, ConstId>> pairs;
  // Clamp the reserve: a corrupt count must fail the bounded reads
  // below, not throw bad_alloc here (decode never aborts).
  pairs.reserve(std::min<uint32_t>(bindings, 1024));
  for (uint32_t i = 0; i < bindings; ++i) {
    std::string var_name = reader->Str();
    std::string const_name = reader->Str();
    if (!reader->ok() || var_name.empty()) return false;
    pairs.emplace_back(Var(var_name), Const(const_name));
  }
  return FinishViolation(std::move(pairs), constraint_index, out);
}

bool DecodeViolationV2(Reader* reader, const ConstraintSet& constraints,
                       StringDictDecoder* dict, Violation* out) {
  uint64_t constraint_index = reader->Var();
  uint64_t bindings = reader->Var();
  if (!reader->ok() || constraint_index >= constraints.size()) return false;
  std::vector<std::pair<VarId, ConstId>> pairs;
  pairs.reserve(std::min<uint64_t>(bindings, 1024));
  for (uint64_t i = 0; i < bindings; ++i) {
    std::string var_name;
    std::string const_name;
    if (!dict->Read(reader, &var_name) || !dict->Read(reader, &const_name) ||
        var_name.empty()) {
      return false;
    }
    pairs.emplace_back(Var(var_name), Const(const_name));
  }
  return FinishViolation(std::move(pairs),
                         static_cast<uint32_t>(constraint_index), out);
}

bool ParseMass(std::string text, bool ok, Rational* out) {
  if (!ok) return false;
  Result<Rational> parsed = Rational::FromString(text);
  if (!parsed.ok()) return false;
  *out = std::move(parsed.value());
  return true;
}

bool DecodeMassV1(Reader* reader, Rational* out) {
  std::string text = reader->Str();
  return ParseMass(std::move(text), reader->ok(), out);
}

bool DecodeMassV2(Reader* reader, StringDictDecoder* dict, Rational* out) {
  std::string text;
  bool ok = dict->Read(reader, &text);
  return ParseMass(std::move(text), ok, out);
}

// ---------------------------------------------------------------------
// Identity payload (shared by both versions and the delta-log head)
// ---------------------------------------------------------------------

std::string EncodeIdentityPayload(const SnapshotIdentity& identity) {
  std::string payload;
  Writer writer(&payload);
  writer.Str(identity.db_text);
  writer.Str(identity.constraints_digest);
  writer.Str(identity.generator_identity);
  writer.U8(identity.prune ? 1 : 0);
  return payload;
}

/// Parses an identity section payload and verifies every component by
/// string equality against the live rendering — the check that makes a
/// fingerprint collision split roots instead of aliasing them.
Status VerifyIdentityPayload(const char* data, size_t size,
                             const SnapshotIdentity& expected) {
  Reader reader(data, size);
  SnapshotIdentity stored;
  stored.db_text = reader.Str();
  stored.constraints_digest = reader.Str();
  stored.generator_identity = reader.Str();
  stored.prune = reader.U8() != 0;
  if (!reader.ok() || !reader.AtEnd()) return Corrupt("identity framing");
  if (stored.db_text != expected.db_text ||
      stored.constraints_digest != expected.constraints_digest ||
      stored.generator_identity != expected.generator_identity ||
      stored.prune != expected.prune) {
    return Corrupt("identity mismatch (another root, or stale schema)");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Entry payloads
// ---------------------------------------------------------------------

/// Runs a per-entry callback over some subset of a table (ForEach or a
/// ForEachSince window) — the seam between full snapshots and delta
/// records, which share one entry encoding.
using EntryEnumerator = std::function<void(
    const std::function<void(const std::vector<FactId>& removed,
                             const ViolationSet& eliminated,
                             const MemoOutcome& outcome)>&)>;

std::string EncodeEntriesPayloadV1(const Database& root_db,
                                   const TranspositionTable& table) {
  std::vector<FactId> dictionary = Dictionary(root_db);
  FactIndexMap index_of = IndexOf(dictionary);
  std::string payload;
  size_t entry_count = 0;
  Writer writer(&payload);
  writer.U64(dictionary.size());
  // Entry count back-patched below (ForEach size is not known upfront —
  // the table may be mutating concurrently).
  size_t count_pos = payload.size();
  writer.U64(0);
  table.ForEach([&](const std::vector<FactId>& removed,
                    const ViolationSet& eliminated,
                    const MemoOutcome& outcome) {
    EncodeRemovedV1(&writer, removed, index_of);
    writer.U32(static_cast<uint32_t>(eliminated.size()));
    for (const Violation& violation : eliminated) {
      EncodeViolationV1(&writer, violation);
    }
    writer.U32(static_cast<uint32_t>(outcome.repairs.size()));
    for (const MemoOutcome::RepairShare& share : outcome.repairs) {
      EncodeRemovedV1(&writer, share.removed, index_of);
      writer.Str(share.mass.ToString());
      writer.U64(share.num_sequences);
    }
    writer.Str(outcome.success_mass.ToString());
    writer.Str(outcome.failing_mass.ToString());
    writer.U64(outcome.states);
    writer.U64(outcome.absorbing_states);
    writer.U64(outcome.successful_sequences);
    writer.U64(outcome.failing_sequences);
    writer.U64(outcome.depth_below);
    ++entry_count;
  });
  std::string patched;
  Writer(&patched).U64(entry_count);
  payload.replace(count_pos, patched.size(), patched);
  return payload;
}

std::string EncodeEntriesPayloadV2(const Database& root_db,
                                   const EntryEnumerator& for_each,
                                   size_t* entry_count_out) {
  std::vector<FactId> dictionary = Dictionary(root_db);
  FactIndexMap index_of = IndexOf(dictionary);
  std::string payload;
  size_t entry_count = 0;
  Writer writer(&payload);
  // Fixed-width prefix (everything after is varint/dict-coded): the
  // dictionary size pins the index space, the count is back-patched.
  writer.U64(dictionary.size());
  size_t count_pos = payload.size();
  writer.U64(0);
  StringDictEncoder dict;
  for_each([&](const std::vector<FactId>& removed,
               const ViolationSet& eliminated, const MemoOutcome& outcome) {
    EncodeRemovedV2(&writer, removed, index_of);
    writer.Var(eliminated.size());
    for (const Violation& violation : eliminated) {
      EncodeViolationV2(&writer, violation, &dict);
    }
    writer.Var(outcome.repairs.size());
    for (const MemoOutcome::RepairShare& share : outcome.repairs) {
      EncodeRemovedV2(&writer, share.removed, index_of);
      dict.Write(&writer, share.mass.ToString());
      writer.Var(share.num_sequences);
    }
    dict.Write(&writer, outcome.success_mass.ToString());
    dict.Write(&writer, outcome.failing_mass.ToString());
    writer.Var(outcome.states);
    writer.Var(outcome.absorbing_states);
    writer.Var(outcome.successful_sequences);
    writer.Var(outcome.failing_sequences);
    writer.Var(outcome.depth_below);
    ++entry_count;
  });
  std::string patched;
  Writer(&patched).U64(entry_count);
  payload.replace(count_pos, patched.size(), patched);
  if (entry_count_out != nullptr) *entry_count_out = entry_count;
  return payload;
}

/// Decodes one entries payload (either version) into `table`, re-keying
/// every entry against the live process. The version only changes the
/// primitive codings; the re-interning and live-hash recomputation are
/// identical.
Status RestoreEntriesPayload(const char* data, size_t size, uint32_t version,
                             const std::vector<FactId>& dictionary,
                             size_t root_hash,
                             const ConstraintSet& constraints,
                             TranspositionTable* table,
                             size_t* entries_applied) {
  bool v2 = version >= 2;
  Reader reader(data, size);
  StringDictDecoder dict;
  uint64_t stored_dictionary_size = reader.U64();
  if (!reader.ok() || stored_dictionary_size != dictionary.size()) {
    return Corrupt("dictionary size mismatch");
  }
  uint64_t entry_count = reader.U64();
  if (!reader.ok()) return Corrupt("entries framing");

  std::vector<FactId> scratch;
  for (uint64_t e = 0; e < entry_count; ++e) {
    bool removed_ok = v2 ? DecodeRemovedV2(&reader, dictionary, &scratch)
                         : DecodeRemovedV1(&reader, dictionary, &scratch);
    if (!removed_ok) return Corrupt("entry removed-set");
    // Live StateKey: the entry state's database is root − removed, and the
    // incremental Database hash is a wrap-around sum of mixed per-fact
    // hashes (util/hash.h), so removal subtracts each contribution.
    size_t db_hash = root_hash;
    std::vector<FactId> removed(scratch);
    std::sort(removed.begin(), removed.end());  // numeric order, as stored
    for (FactId id : removed) {
      db_hash -= HashMix64(FactStore::Global().hash(id));
    }

    uint64_t eliminated_count = v2 ? reader.Var() : reader.U32();
    if (!reader.ok()) return Corrupt("entry eliminated-set");
    ViolationSet eliminated;
    size_t eliminated_hash = 0;
    for (uint64_t i = 0; i < eliminated_count; ++i) {
      Violation violation;
      bool violation_ok =
          v2 ? DecodeViolationV2(&reader, constraints, &dict, &violation)
             : DecodeViolationV1(&reader, constraints, &violation);
      if (!violation_ok) return Corrupt("violation payload");
      eliminated_hash += HashMix64(violation.Hash());
      if (!eliminated.insert(std::move(violation)).second) {
        return Corrupt("duplicate eliminated violation");
      }
    }

    auto outcome = std::make_shared<MemoOutcome>();
    uint64_t repair_count = v2 ? reader.Var() : reader.U32();
    if (!reader.ok()) return Corrupt("repair count");
    // Clamped for the same reason as in DecodeViolation*: corrupt counts
    // must surface as bounded-read failures, never as bad_alloc.
    outcome->repairs.reserve(std::min<uint64_t>(repair_count, 65536));
    for (uint64_t i = 0; i < repair_count; ++i) {
      MemoOutcome::RepairShare share;
      bool share_ok = v2 ? DecodeRemovedV2(&reader, dictionary, &share.removed)
                         : DecodeRemovedV1(&reader, dictionary, &share.removed);
      if (!share_ok) return Corrupt("repair share removed-set");
      // Ascending dictionary indices are fact value order — exactly the
      // order RepairShare::removed stores (repair/memo.h).
      bool mass_ok = v2 ? DecodeMassV2(&reader, &dict, &share.mass)
                        : DecodeMassV1(&reader, &share.mass);
      if (!mass_ok) return Corrupt("repair mass");
      share.num_sequences = v2 ? reader.Var() : reader.U64();
      if (!reader.ok()) return Corrupt("repair sequences");
      outcome->repairs.push_back(std::move(share));
    }
    bool masses_ok =
        v2 ? DecodeMassV2(&reader, &dict, &outcome->success_mass) &&
                 DecodeMassV2(&reader, &dict, &outcome->failing_mass)
           : DecodeMassV1(&reader, &outcome->success_mass) &&
                 DecodeMassV1(&reader, &outcome->failing_mass);
    if (!masses_ok) return Corrupt("outcome masses");
    if (v2) {
      outcome->states = reader.Var();
      outcome->absorbing_states = reader.Var();
      outcome->successful_sequences = reader.Var();
      outcome->failing_sequences = reader.Var();
      outcome->depth_below = reader.Var();
    } else {
      outcome->states = reader.U64();
      outcome->absorbing_states = reader.U64();
      outcome->successful_sequences = reader.U64();
      outcome->failing_sequences = reader.U64();
      outcome->depth_below = reader.U64();
    }
    if (!reader.ok()) return Corrupt("outcome counters");

    StateKey key{db_hash, eliminated_hash};
    table->RestoreEntry(key, std::move(removed), std::move(eliminated),
                        std::move(outcome));
    if (entries_applied != nullptr) ++*entries_applied;
  }
  if (!reader.AtEnd()) return Corrupt("trailing entry bytes");
  return Status::Ok();
}

std::string EncodeSnapshotWithVersion(const SnapshotIdentity& identity,
                                      const Database& root_db,
                                      const TranspositionTable& table,
                                      uint32_t version) {
  std::string entries_payload =
      version >= 2
          ? EncodeEntriesPayloadV2(
                root_db,
                [&table](const auto& fn) { table.ForEach(fn); }, nullptr)
          : EncodeEntriesPayloadV1(root_db, table);
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  Writer header(&out);
  header.U32(version);
  header.U32(2);  // section count
  AppendSection(&out, kSectionIdentity, EncodeIdentityPayload(identity));
  AppendSection(&out, kSectionEntries, entries_payload);
  return out;
}

}  // namespace

std::string RenderConstraints(const Schema& schema,
                              const ConstraintSet& constraints) {
  std::string digest;
  for (const Constraint& constraint : constraints) {
    digest += constraint.ToString(schema);
    digest += '\n';
  }
  return digest;
}

uint64_t StableFingerprint(const SnapshotIdentity& identity) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&hash](const char* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      hash ^= static_cast<uint8_t>(data[i]);
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  };
  // A separator byte between components keeps ("ab","c") and ("a","bc")
  // distinct; components themselves never contain 0x1F.
  char separator = 0x1F;
  mix(identity.db_text.data(), identity.db_text.size());
  mix(&separator, 1);
  mix(identity.constraints_digest.data(), identity.constraints_digest.size());
  mix(&separator, 1);
  mix(identity.generator_identity.data(), identity.generator_identity.size());
  mix(&separator, 1);
  char prune = identity.prune ? 1 : 0;
  mix(&prune, 1);
  return hash;
}

std::string EncodeSnapshot(const SnapshotIdentity& identity,
                           const Database& root_db,
                           const TranspositionTable& table) {
  return EncodeSnapshotWithVersion(identity, root_db, table,
                                   kSnapshotFormatVersion);
}

std::string EncodeSnapshotV1(const SnapshotIdentity& identity,
                             const Database& root_db,
                             const TranspositionTable& table) {
  return EncodeSnapshotWithVersion(identity, root_db, table, 1);
}

Result<std::shared_ptr<TranspositionTable>> DecodeSnapshot(
    const std::string& bytes, const SnapshotIdentity& expected,
    const Database& live_root, const ConstraintSet& constraints,
    size_t max_entries, size_t max_bytes) {
  Reader top(bytes.data(), bytes.size());
  auto [magic, magic_size] = top.Span(sizeof(kMagic));
  if (!top.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  uint32_t version = top.U32();
  if (!top.ok() || version < kMinSnapshotFormatVersion ||
      version > kSnapshotFormatVersion) {
    return Corrupt("format version " + std::to_string(version) +
                   " (this build reads " +
                   std::to_string(kMinSnapshotFormatVersion) + ".." +
                   std::to_string(kSnapshotFormatVersion) + ")");
  }
  uint32_t section_count = top.U32();
  if (!top.ok() || section_count != 2) return Corrupt("bad section count");

  std::pair<const char*, size_t> sections[2] = {};
  bool seen[2] = {false, false};
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = top.U32();
    uint64_t size = top.U64();
    uint32_t crc = top.U32();
    auto span = top.Span(size);
    if (!top.ok()) return Corrupt("truncated section");
    if (Crc32(span.first, span.second) != crc) {
      return Corrupt("section checksum mismatch");
    }
    if (id != kSectionIdentity && id != kSectionEntries) {
      return Corrupt("unknown section id");
    }
    size_t slot = id == kSectionIdentity ? 0 : 1;
    if (seen[slot]) return Corrupt("duplicate section");
    seen[slot] = true;
    sections[slot] = span;
  }
  if (!top.AtEnd()) return Corrupt("trailing bytes");
  if (!seen[0] || !seen[1]) return Corrupt("missing section");

  Status identity_ok =
      VerifyIdentityPayload(sections[0].first, sections[0].second, expected);
  if (!identity_ok.ok()) return identity_ok;

  std::vector<FactId> dictionary = Dictionary(live_root);
  auto table = std::make_shared<TranspositionTable>(max_entries, max_bytes);
  table->SetRootShape(live_root.size(), live_root.schema().size());
  Status entries_ok = RestoreEntriesPayload(
      sections[1].first, sections[1].second, version, dictionary,
      live_root.Hash(), constraints, table.get(), nullptr);
  if (!entries_ok.ok()) return entries_ok;
  return table;
}

std::string EncodeDeltaLogHead(const SnapshotIdentity& identity) {
  std::string out;
  out.append(kLogMagic, sizeof(kLogMagic));
  Writer header(&out);
  header.U32(kSnapshotFormatVersion);
  AppendSection(&out, kSectionIdentity, EncodeIdentityPayload(identity));
  return out;
}

std::string EncodeDeltaRecord(const Database& root_db,
                              const TranspositionTable& table,
                              uint64_t since_seq, uint64_t upto_seq,
                              size_t* entry_count) {
  std::string payload = EncodeEntriesPayloadV2(
      root_db,
      [&table, since_seq, upto_seq](const auto& fn) {
        table.ForEachSince(since_seq, upto_seq, fn);
      },
      entry_count);
  std::string out;
  AppendSection(&out, kSectionDelta, payload);
  return out;
}

Status ApplyDeltaLog(const std::string& log_bytes,
                     const SnapshotIdentity& expected,
                     const Database& live_root,
                     const ConstraintSet& constraints,
                     TranspositionTable* table, DeltaLogApplyResult* result) {
  *result = DeltaLogApplyResult{};
  Reader top(log_bytes.data(), log_bytes.size());
  auto [magic, magic_size] = top.Span(sizeof(kLogMagic));
  if (!top.ok() || std::memcmp(magic, kLogMagic, sizeof(kLogMagic)) != 0) {
    return Corrupt("bad delta-log magic");
  }
  uint32_t version = top.U32();
  if (!top.ok() || version < 2 || version > kSnapshotFormatVersion) {
    return Corrupt("delta-log format version " + std::to_string(version));
  }
  // The head's identity section is load-bearing, not advisory: a record
  // only ever applies after the same string-equality verification a base
  // snapshot passes. Head damage rejects the whole log (the caller keeps
  // its base-only table and compacts the log away on the next spill).
  {
    uint32_t id = top.U32();
    uint64_t size = top.U64();
    uint32_t crc = top.U32();
    auto span = top.Span(size);
    if (!top.ok() || id != kSectionIdentity) {
      return Corrupt("delta-log head framing");
    }
    if (Crc32(span.first, span.second) != crc) {
      return Corrupt("delta-log head checksum mismatch");
    }
    Status identity_ok = VerifyIdentityPayload(span.first, span.second,
                                               expected);
    if (!identity_ok.ok()) return identity_ok;
  }

  std::vector<FactId> dictionary = Dictionary(live_root);
  size_t root_hash = live_root.Hash();
  // Records apply in append order; the first torn or corrupt one ends
  // application at the valid prefix. A record damaged halfway through
  // may have restored some of its entries already — sound either way,
  // since every entry is an independently true fact about this root.
  while (!top.AtEnd()) {
    uint32_t id = top.U32();
    uint64_t size = top.U64();
    uint32_t crc = top.U32();
    auto span = top.Span(size);
    if (!top.ok() || id != kSectionDelta ||
        Crc32(span.first, span.second) != crc) {
      result->clean_tail = false;
      break;
    }
    size_t entries_applied = 0;
    Status record_ok = RestoreEntriesPayload(span.first, span.second,
                                             version, dictionary, root_hash,
                                             constraints, table,
                                             &entries_applied);
    result->entries_applied += entries_applied;
    if (!record_ok.ok()) {
      result->clean_tail = false;
      break;
    }
    ++result->records_applied;
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace opcqa
