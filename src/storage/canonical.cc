#include "storage/canonical.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "logic/term.h"
#include "relational/symbol_table.h"
#include "util/hash.h"

namespace opcqa {
namespace storage {

namespace {

// ---------------------------------------------------------------------
// Framing primitives
// ---------------------------------------------------------------------

constexpr char kMagic[8] = {'O', 'P', 'C', 'Q', 'S', 'N', 'A', 'P'};
constexpr uint32_t kSectionIdentity = 1;
constexpr uint32_t kSectionEntries = 2;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the ubiquitous choice for
/// detecting accidental corruption in storage formats.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(const char* data, size_t size) {
  const auto& table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Little-endian append-only writer. All integers are fixed-width so the
/// format has no host-dependent layout.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t value) { out_->push_back(static_cast<char>(value)); }
  void U32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
    }
  }
  void U64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
    }
  }
  void Str(const std::string& text) {
    U32(static_cast<uint32_t>(text.size()));
    out_->append(text);
  }

 private:
  std::string* out_;
};

/// Bounds-checked little-endian reader: every accessor fails (sets a flag
/// and returns zero/empty) instead of reading past the end, so truncated
/// or length-corrupted snapshots surface as a clean decode error.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }

  uint8_t U8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }
  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }
  std::string Str() {
    uint32_t size = U32();
    if (!Require(size)) return std::string();
    std::string text(data_ + pos_, size);
    pos_ += size;
    return text;
  }
  /// A raw sub-span (for section payloads); empty on overflow.
  std::pair<const char*, size_t> Span(size_t size) {
    if (!Require(size)) return {nullptr, 0};
    const char* begin = data_ + pos_;
    pos_ += size;
    return {begin, size};
  }

 private:
  bool Require(size_t bytes) {
    if (!ok_ || size_ - pos_ < bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void AppendSection(std::string* out, uint32_t id, const std::string& payload) {
  Writer writer(out);
  writer.U32(id);
  writer.U64(payload.size());
  writer.U32(Crc32(payload.data(), payload.size()));
  out->append(payload);
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

/// The root's facts in value order — identical in every process holding an
/// equal database, which is what makes dictionary indices canonical.
std::vector<FactId> Dictionary(const Database& root_db) {
  return root_db.AllFactIds();
}

void EncodeRemoved(Writer* writer, const std::vector<FactId>& removed,
                   const std::unordered_map<FactId, uint32_t>& index_of) {
  // Ascending dictionary indices == fact value order, independent of the
  // process-local numeric id order the live table verifies in.
  std::vector<uint32_t> indices;
  indices.reserve(removed.size());
  for (FactId id : removed) {
    auto it = index_of.find(id);
    OPCQA_CHECK(it != index_of.end())
        << "memo entry removes a fact outside the chain root";
    indices.push_back(it->second);
  }
  std::sort(indices.begin(), indices.end());
  writer->U32(static_cast<uint32_t>(indices.size()));
  for (uint32_t index : indices) writer->U32(index);
}

void EncodeViolation(Writer* writer, const Violation& violation) {
  writer->U32(static_cast<uint32_t>(violation.constraint_index));
  const auto& bindings = violation.h.bindings();
  writer->U32(static_cast<uint32_t>(bindings.size()));
  for (const auto& [var, value] : bindings) {
    writer->Str(VarName(var));
    writer->Str(ConstName(value));
  }
}

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("snapshot rejected: " + what);
}

/// Maps sorted dictionary indices back to live ids. Returns false on any
/// out-of-range or non-strictly-ascending index (corrupt payload).
bool DecodeRemoved(Reader* reader, const std::vector<FactId>& dictionary,
                   std::vector<FactId>* out) {
  uint32_t count = reader->U32();
  if (!reader->ok() || count > dictionary.size()) return false;
  out->clear();
  out->reserve(count);
  uint32_t previous = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t index = reader->U32();
    if (!reader->ok() || index >= dictionary.size()) return false;
    if (i > 0 && index <= previous) return false;
    previous = index;
    out->push_back(dictionary[index]);
  }
  return true;
}

bool DecodeViolation(Reader* reader, const ConstraintSet& constraints,
                     Violation* out) {
  uint32_t constraint_index = reader->U32();
  uint32_t bindings = reader->U32();
  if (!reader->ok() || constraint_index >= constraints.size()) return false;
  std::vector<std::pair<VarId, ConstId>> pairs;
  // Clamp the reserve: a corrupt count must fail the bounded reads
  // below, not throw bad_alloc here (decode never aborts).
  pairs.reserve(std::min<uint32_t>(bindings, 1024));
  for (uint32_t i = 0; i < bindings; ++i) {
    std::string var_name = reader->Str();
    std::string const_name = reader->Str();
    if (!reader->ok() || var_name.empty()) return false;
    pairs.emplace_back(Var(var_name), Const(const_name));
  }
  // Reject duplicate variables before Bind() (which would CHECK-fail) —
  // decode must degrade to cold compute, never abort.
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].first == pairs[i - 1].first) return false;
  }
  out->constraint_index = constraint_index;
  out->h = Assignment();
  for (const auto& [var, value] : pairs) out->h.Bind(var, value);
  return true;
}

bool DecodeMass(Reader* reader, Rational* out) {
  std::string text = reader->Str();
  if (!reader->ok()) return false;
  Result<Rational> parsed = Rational::FromString(text);
  if (!parsed.ok()) return false;
  *out = std::move(parsed.value());
  return true;
}

}  // namespace

std::string RenderConstraints(const Schema& schema,
                              const ConstraintSet& constraints) {
  std::string digest;
  for (const Constraint& constraint : constraints) {
    digest += constraint.ToString(schema);
    digest += '\n';
  }
  return digest;
}

uint64_t StableFingerprint(const SnapshotIdentity& identity) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&hash](const char* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      hash ^= static_cast<uint8_t>(data[i]);
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  };
  // A separator byte between components keeps ("ab","c") and ("a","bc")
  // distinct; components themselves never contain 0x1F.
  char separator = 0x1F;
  mix(identity.db_text.data(), identity.db_text.size());
  mix(&separator, 1);
  mix(identity.constraints_digest.data(), identity.constraints_digest.size());
  mix(&separator, 1);
  mix(identity.generator_identity.data(), identity.generator_identity.size());
  mix(&separator, 1);
  char prune = identity.prune ? 1 : 0;
  mix(&prune, 1);
  return hash;
}

std::string EncodeSnapshot(const SnapshotIdentity& identity,
                           const Database& root_db,
                           const TranspositionTable& table) {
  std::string identity_payload;
  {
    Writer writer(&identity_payload);
    writer.Str(identity.db_text);
    writer.Str(identity.constraints_digest);
    writer.Str(identity.generator_identity);
    writer.U8(identity.prune ? 1 : 0);
  }

  std::vector<FactId> dictionary = Dictionary(root_db);
  std::unordered_map<FactId, uint32_t> index_of;
  index_of.reserve(dictionary.size());
  for (uint32_t i = 0; i < dictionary.size(); ++i) {
    index_of.emplace(dictionary[i], i);
  }

  std::string entries_payload;
  size_t entry_count = 0;
  {
    Writer writer(&entries_payload);
    writer.U64(dictionary.size());
    // Entry count back-patched below (ForEach size is not known upfront —
    // the table may be mutating concurrently).
    size_t count_pos = entries_payload.size();
    writer.U64(0);
    table.ForEach([&](const std::vector<FactId>& removed,
                      const ViolationSet& eliminated,
                      const MemoOutcome& outcome) {
      EncodeRemoved(&writer, removed, index_of);
      writer.U32(static_cast<uint32_t>(eliminated.size()));
      for (const Violation& violation : eliminated) {
        EncodeViolation(&writer, violation);
      }
      writer.U32(static_cast<uint32_t>(outcome.repairs.size()));
      for (const MemoOutcome::RepairShare& share : outcome.repairs) {
        EncodeRemoved(&writer, share.removed, index_of);
        writer.Str(share.mass.ToString());
        writer.U64(share.num_sequences);
      }
      writer.Str(outcome.success_mass.ToString());
      writer.Str(outcome.failing_mass.ToString());
      writer.U64(outcome.states);
      writer.U64(outcome.absorbing_states);
      writer.U64(outcome.successful_sequences);
      writer.U64(outcome.failing_sequences);
      writer.U64(outcome.depth_below);
      ++entry_count;
    });
    std::string patched;
    Writer(&patched).U64(entry_count);
    entries_payload.replace(count_pos, patched.size(), patched);
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  Writer header(&out);
  header.U32(kSnapshotFormatVersion);
  header.U32(2);  // section count
  AppendSection(&out, kSectionIdentity, identity_payload);
  AppendSection(&out, kSectionEntries, entries_payload);
  return out;
}

Result<std::shared_ptr<TranspositionTable>> DecodeSnapshot(
    const std::string& bytes, const SnapshotIdentity& expected,
    const Database& live_root, const ConstraintSet& constraints,
    size_t max_entries, size_t max_bytes) {
  Reader top(bytes.data(), bytes.size());
  auto [magic, magic_size] = top.Span(sizeof(kMagic));
  if (!top.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  uint32_t version = top.U32();
  if (!top.ok() || version != kSnapshotFormatVersion) {
    return Corrupt("format version " + std::to_string(version) +
                   " (this build reads " +
                   std::to_string(kSnapshotFormatVersion) + ")");
  }
  uint32_t section_count = top.U32();
  if (!top.ok() || section_count != 2) return Corrupt("bad section count");

  std::pair<const char*, size_t> sections[2] = {};
  bool seen[2] = {false, false};
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = top.U32();
    uint64_t size = top.U64();
    uint32_t crc = top.U32();
    auto span = top.Span(size);
    if (!top.ok()) return Corrupt("truncated section");
    if (Crc32(span.first, span.second) != crc) {
      return Corrupt("section checksum mismatch");
    }
    if (id != kSectionIdentity && id != kSectionEntries) {
      return Corrupt("unknown section id");
    }
    size_t slot = id == kSectionIdentity ? 0 : 1;
    if (seen[slot]) return Corrupt("duplicate section");
    seen[slot] = true;
    sections[slot] = span;
  }
  if (!top.AtEnd()) return Corrupt("trailing bytes");
  if (!seen[0] || !seen[1]) return Corrupt("missing section");

  {
    Reader reader(sections[0].first, sections[0].second);
    SnapshotIdentity stored;
    stored.db_text = reader.Str();
    stored.constraints_digest = reader.Str();
    stored.generator_identity = reader.Str();
    stored.prune = reader.U8() != 0;
    if (!reader.ok() || !reader.AtEnd()) return Corrupt("identity framing");
    // Every component verified for real — string equality against the
    // live rendering, so a fingerprint collision can never alias roots.
    if (stored.db_text != expected.db_text ||
        stored.constraints_digest != expected.constraints_digest ||
        stored.generator_identity != expected.generator_identity ||
        stored.prune != expected.prune) {
      return Corrupt("identity mismatch (another root, or stale schema)");
    }
  }

  std::vector<FactId> dictionary = Dictionary(live_root);
  Reader reader(sections[1].first, sections[1].second);
  uint64_t stored_dictionary_size = reader.U64();
  if (!reader.ok() || stored_dictionary_size != dictionary.size()) {
    return Corrupt("dictionary size mismatch");
  }
  uint64_t entry_count = reader.U64();
  if (!reader.ok()) return Corrupt("entries framing");

  auto table = std::make_shared<TranspositionTable>(max_entries, max_bytes);
  table->SetRootShape(live_root.size(), live_root.schema().size());
  size_t root_hash = live_root.Hash();

  std::vector<FactId> scratch;
  for (uint64_t e = 0; e < entry_count; ++e) {
    if (!DecodeRemoved(&reader, dictionary, &scratch)) {
      return Corrupt("entry removed-set");
    }
    // Live StateKey: the entry state's database is root − removed, and the
    // incremental Database hash is a wrap-around sum of mixed per-fact
    // hashes (util/hash.h), so removal subtracts each contribution.
    size_t db_hash = root_hash;
    std::vector<FactId> removed(scratch);
    std::sort(removed.begin(), removed.end());  // numeric order, as stored
    for (FactId id : removed) {
      db_hash -= HashMix64(FactStore::Global().hash(id));
    }

    uint32_t eliminated_count = reader.U32();
    if (!reader.ok()) return Corrupt("entry eliminated-set");
    ViolationSet eliminated;
    size_t eliminated_hash = 0;
    for (uint32_t i = 0; i < eliminated_count; ++i) {
      Violation violation;
      if (!DecodeViolation(&reader, constraints, &violation)) {
        return Corrupt("violation payload");
      }
      eliminated_hash += HashMix64(violation.Hash());
      if (!eliminated.insert(std::move(violation)).second) {
        return Corrupt("duplicate eliminated violation");
      }
    }

    auto outcome = std::make_shared<MemoOutcome>();
    uint32_t repair_count = reader.U32();
    if (!reader.ok()) return Corrupt("repair count");
    // Clamped for the same reason as in DecodeViolation: corrupt counts
    // must surface as bounded-read failures, never as bad_alloc.
    outcome->repairs.reserve(std::min<uint32_t>(repair_count, 65536));
    for (uint32_t i = 0; i < repair_count; ++i) {
      MemoOutcome::RepairShare share;
      if (!DecodeRemoved(&reader, dictionary, &share.removed)) {
        return Corrupt("repair share removed-set");
      }
      // Ascending dictionary indices are fact value order — exactly the
      // order RepairShare::removed stores (repair/memo.h).
      if (!DecodeMass(&reader, &share.mass)) return Corrupt("repair mass");
      share.num_sequences = reader.U64();
      if (!reader.ok()) return Corrupt("repair sequences");
      outcome->repairs.push_back(std::move(share));
    }
    if (!DecodeMass(&reader, &outcome->success_mass) ||
        !DecodeMass(&reader, &outcome->failing_mass)) {
      return Corrupt("outcome masses");
    }
    outcome->states = reader.U64();
    outcome->absorbing_states = reader.U64();
    outcome->successful_sequences = reader.U64();
    outcome->failing_sequences = reader.U64();
    outcome->depth_below = reader.U64();
    if (!reader.ok()) return Corrupt("outcome counters");

    StateKey key{db_hash, eliminated_hash};
    table->RestoreEntry(key, std::move(removed), std::move(eliminated),
                        std::move(outcome));
  }
  if (!reader.AtEnd()) return Corrupt("trailing entry bytes");
  return table;
}

}  // namespace storage
}  // namespace opcqa
