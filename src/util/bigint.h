// Arbitrary-precision signed integers.
//
// Repair probabilities in the operational CQA framework are exact rationals
// whose numerators/denominators are products of per-state branch counts and
// weights; they overflow 64-bit integers after a few dozen chain levels.
// BigInt provides the magnitude arithmetic Rational is built on.
//
// Representation: sign + little-endian vector of 32-bit limbs, normalized
// (no leading zero limbs; zero has an empty limb vector and positive sign).
//
// Small-value fast paths: operands whose magnitude fits 64 bits (≤ 2
// limbs) — the overwhelmingly common case for chain-edge probabilities and
// the gcd/divmod calls of Rational::Reduce — multiply/divide through
// native 64/128-bit arithmetic and Euclid on uint64, skipping the
// vector-allocating MulMag/DivModMag machinery. Compound assignments
// mutate the left operand's limb vector in place (reusing its capacity)
// instead of rebuilding *this from a freshly allocated temporary.

#ifndef OPCQA_UTIL_BIGINT_H_
#define OPCQA_UTIL_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace opcqa {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From native integers (implicit by design: arithmetic with literals).
  BigInt(int64_t value);   // NOLINT
  BigInt(uint64_t value);  // NOLINT
  BigInt(int value) : BigInt(static_cast<int64_t>(value)) {}  // NOLINT

  /// Parses an optionally signed decimal string, e.g. "-123456789...".
  static Result<BigInt> FromString(std::string_view text);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  /// True when the value fits in int64_t.
  bool FitsInt64() const;
  /// Value as int64_t; CHECK-fails unless FitsInt64().
  int64_t ToInt64() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated (toward zero) division; CHECK-fails on division by zero.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  // In-place: accumulation loops (mass sums, MulMag-free small products)
  // reuse the left operand's limb capacity instead of reallocating.
  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other);
  BigInt& operator%=(const BigInt& other);

  /// Computes quotient and remainder in one pass (remainder sign follows
  /// the dividend, matching operator/ and operator%).
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  /// Greatest common divisor (always non-negative; Gcd(0,0) == 0).
  static BigInt Gcd(BigInt a, BigInt b);

  /// this^exponent for small native exponents.
  BigInt Pow(uint32_t exponent) const;

  /// Three-way comparison: negative / zero / positive.
  int Compare(const BigInt& other) const;

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Decimal representation, e.g. "-123000".
  std::string ToString() const;

  /// Approximate conversion: value ≈ mantissa * 2^exponent with mantissa in
  /// [0.5, 1) (or 0). Safe for values far beyond double range.
  void ToMantissaExp(double* mantissa, int64_t* exponent) const;

  /// Approximate double value (+/-inf on overflow).
  double ToDouble() const;

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  /// Stable hash of the value.
  size_t Hash() const;

 private:
  // Magnitude-only helpers; operands must be normalized.
  // In-place |a| += |b| / |a| -= |b| (the latter requires |a| >= |b|).
  // Alias-safe for a == b.
  static void AddMagInPlace(std::vector<uint32_t>* a,
                            const std::vector<uint32_t>& b);
  static void SubMagInPlace(std::vector<uint32_t>* a,
                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
  static void DivModMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b,
                        std::vector<uint32_t>* quotient,
                        std::vector<uint32_t>* remainder);
  static void Normalize(std::vector<uint32_t>* limbs);

  void Canonicalize();

  bool negative_ = false;
  std::vector<uint32_t> limbs_;  // little-endian, base 2^32
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace opcqa

template <>
struct std::hash<opcqa::BigInt> {
  size_t operator()(const opcqa::BigInt& value) const { return value.Hash(); }
};

#endif  // OPCQA_UTIL_BIGINT_H_
