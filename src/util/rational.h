// Exact rational numbers over BigInt.
//
// Every probability in the operational framework — edge weights of a
// repairing Markov chain, hitting-distribution masses, repair probabilities,
// CP(t) values — is a Rational. Doubles appear only at reporting boundaries
// and inside the randomized sampler.
//
// Invariants: denominator > 0; numerator/denominator reduced; 0 is 0/1.

#ifndef OPCQA_UTIL_RATIONAL_H_
#define OPCQA_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bigint.h"
#include "util/status.h"

namespace opcqa {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// Whole number (implicit by design: arithmetic with literals).
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(int value) : num_(value), den_(1) {}      // NOLINT
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT

  /// numerator/denominator, reduced; CHECK-fails if denominator is zero.
  Rational(BigInt numerator, BigInt denominator);
  Rational(int64_t numerator, int64_t denominator)
      : Rational(BigInt(numerator), BigInt(denominator)) {}

  /// Parses "a", "a/b" or simple decimals like "0.45".
  static Result<Rational> FromString(std::string_view text);

  const BigInt& numerator() const { return num_; }
  const BigInt& denominator() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_negative() const { return num_.is_negative(); }
  bool is_one() const { return num_ == den_; }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// CHECK-fails on division by zero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  int Compare(const Rational& other) const;
  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  /// "num/den" (or just "num" when den == 1).
  std::string ToString() const;

  /// Approximate double value; exact rationals can exceed double range in
  /// numerator and denominator simultaneously, so the conversion works on
  /// mantissa/exponent pairs.
  double ToDouble() const;

  size_t Hash() const;

 private:
  void Reduce();

  BigInt num_;
  BigInt den_;  // > 0
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace opcqa

template <>
struct std::hash<opcqa::Rational> {
  size_t operator()(const opcqa::Rational& value) const {
    return value.Hash();
  }
};

#endif  // OPCQA_UTIL_RATIONAL_H_
