#include "util/status.h"

namespace opcqa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace opcqa
