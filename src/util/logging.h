// Minimal logging and invariant-checking facilities for OpCQA.
//
// Library code uses OPCQA_CHECK for internal invariants (programming errors
// abort with a diagnostic) and the LOG(level) stream for diagnostics. User
// errors (bad input) are reported through Status/Result, never CHECK.

#ifndef OPCQA_UTIL_LOGGING_H_
#define OPCQA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace opcqa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the global minimum level below which LOG() messages are dropped.
LogLevel MinLogLevel();

/// Sets the global minimum log level (default: kInfo).
void SetMinLogLevel(LogLevel level);

namespace internal {

// Accumulates one log message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define OPCQA_LOG(level)                                               \
  ::opcqa::internal::LogMessage(::opcqa::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

// Aborts with a diagnostic when `condition` is false. Always enabled; the
// exact algorithms in this library are cheap relative to the checks.
// The inverted if/else makes the macro dangling-else safe.
#define OPCQA_CHECK(condition)                                              \
  if (condition) {                                                          \
  } else /* NOLINT */                                                       \
    ::opcqa::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define OPCQA_CHECK_EQ(a, b) OPCQA_CHECK((a) == (b))
#define OPCQA_CHECK_NE(a, b) OPCQA_CHECK((a) != (b))
#define OPCQA_CHECK_LT(a, b) OPCQA_CHECK((a) < (b))
#define OPCQA_CHECK_LE(a, b) OPCQA_CHECK((a) <= (b))
#define OPCQA_CHECK_GT(a, b) OPCQA_CHECK((a) > (b))
#define OPCQA_CHECK_GE(a, b) OPCQA_CHECK((a) >= (b))

}  // namespace opcqa

#endif  // OPCQA_UTIL_LOGGING_H_
