// Hash mixing for incrementally-maintained set fingerprints.
//
// Sets that mutate one element at a time (a Database's fact ids, a
// repairing state's eliminated violations) keep their hash as the 2^64
// wrap-around *sum* of per-element hashes: addition is commutative (the
// fingerprint is insertion-order independent, matching set semantics) and
// invertible (removing an element subtracts its contribution), so every
// insert/erase is an O(1) hash update. Raw element hashes are passed
// through a bijective finalizer first so that structured inputs (small
// integers, aligned pointers) spread over all 64 bits before summing —
// plain sums of raw hashes would cancel catastrophically.

#ifndef OPCQA_UTIL_HASH_H_
#define OPCQA_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace opcqa {

/// Bijective 64-bit finalizer (splitmix64's output stage).
inline uint64_t HashMix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// Order-dependent combine for composite element hashes (boost-style).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace opcqa

#endif  // OPCQA_UTIL_HASH_H_
