#ifdef OPCQA_FAILPOINTS

#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

namespace {

/// FNV-1a over the site name — the per-site stream offset. Matches the
/// storage tier's stable-fingerprint choice: independent of std::hash,
/// identical across processes and builds.
uint64_t FnvHash(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// SplitMix64 step — the same mixer util/random.h seeds xoshiro with. A
/// full Rng per site would work too; failpoints only need a stream of
/// independent draws, and one word of state keeps Site trivially
/// resettable.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("OPCQA_FAILPOINTS")) {
    if (*env != '\0') {
      Status parsed = EnableFromSpec(env);
      if (!parsed.ok()) {
        OPCQA_LOG(Warning) << "ignoring malformed OPCQA_FAILPOINTS: "
                           << parsed.ToString();
      }
    }
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Enable(const std::string& site, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& entry = sites_[site];
  entry.spec = spec;
  entry.rng_state = seed_ ^ FnvHash(site);
  entry.stats = FailpointStats();
  armed_.store(true, std::memory_order_relaxed);
}

void FailpointRegistry::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.erase(site);
  if (sites_.empty()) armed_.store(false, std::memory_order_relaxed);
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FailpointRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
  for (auto& [name, site] : sites_) {
    site.rng_state = seed_ ^ FnvHash(name);
    site.stats = FailpointStats();
  }
}

Status FailpointRegistry::EnableFromSpec(std::string_view spec) {
  for (const std::string& piece : Split(spec, ';')) {
    std::string entry = Trim(piece);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint spec needs site=action: " +
                                     entry);
    }
    std::string site = Trim(entry.substr(0, eq));
    if (site.empty()) {
      return Status::InvalidArgument("empty failpoint site in: " + entry);
    }
    FailpointSpec parsed;
    std::vector<std::string> fields = Split(entry.substr(eq + 1), ',');
    if (fields.empty()) {
      return Status::InvalidArgument("failpoint spec has no action: " +
                                     entry);
    }
    std::string action = Trim(fields[0]);
    if (action == "error") {
      parsed.action = FailpointAction::kError;
    } else if (action == "corrupt") {
      parsed.action = FailpointAction::kCorrupt;
    } else if (action == "delay") {
      parsed.action = FailpointAction::kDelay;
    } else if (action == "crash") {
      parsed.action = FailpointAction::kCrash;
    } else {
      return Status::InvalidArgument("unknown failpoint action '" + action +
                                     "' (error|corrupt|delay|crash)");
    }
    for (size_t i = 1; i < fields.size(); ++i) {
      std::string field = Trim(fields[i]);
      size_t feq = field.find('=');
      if (feq == std::string::npos) {
        return Status::InvalidArgument("failpoint option needs key=value: " +
                                       field);
      }
      std::string key = Trim(field.substr(0, feq));
      std::string value = Trim(field.substr(feq + 1));
      char* end = nullptr;
      if (key == "p") {
        parsed.probability = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || parsed.probability < 0.0 ||
            parsed.probability > 1.0) {
          return Status::OutOfRange("failpoint p must be in [0,1]: " + value);
        }
      } else if (key == "nth") {
        parsed.nth = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || parsed.nth == 0) {
          return Status::OutOfRange("failpoint nth must be >= 1: " + value);
        }
      } else if (key == "count") {
        parsed.max_fires = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || parsed.max_fires == 0) {
          return Status::OutOfRange("failpoint count must be >= 1: " + value);
        }
      } else if (key == "delay") {
        parsed.delay_ms = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str()) {
          return Status::InvalidArgument("bad failpoint delay: " + value);
        }
      } else {
        return Status::InvalidArgument("unknown failpoint option '" + key +
                                       "' (p|nth|count|delay)");
      }
    }
    Enable(site, parsed);
  }
  return Status::Ok();
}

FailpointStats FailpointRegistry::StatsFor(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? FailpointStats() : it->second.stats;
}

uint64_t FailpointRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, site] : sites_) total += site.stats.fires;
  return total;
}

uint64_t FailpointRegistry::NextDraw(Site& site) {
  return SplitMix64(&site.rng_state);
}

std::optional<FailpointAction> FailpointRegistry::Hit(const char* site_name) {
  uint64_t delay_ms = 0;
  std::optional<FailpointAction> fired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site_name);
    if (it == sites_.end()) return std::nullopt;
    Site& site = it->second;
    uint64_t hit = ++site.stats.hits;
    if (site.stats.fires >= site.spec.max_fires) return std::nullopt;
    if (site.spec.nth != 0 && hit != site.spec.nth) return std::nullopt;
    if (site.spec.probability < 1.0) {
      // Top 53 bits → uniform double in [0,1), the usual construction.
      double draw = static_cast<double>(NextDraw(site) >> 11) * 0x1.0p-53;
      if (draw >= site.spec.probability) return std::nullopt;
    }
    ++site.stats.fires;
    fired = site.spec.action;
    delay_ms = site.spec.delay_ms;
  }
  // Sleep outside the registry lock so concurrent sites stay independent.
  if (*fired == FailpointAction::kDelay && delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fired;
}

void FailpointRegistry::CorruptionDraw(const char* site_name,
                                       uint64_t* position_seed,
                                       uint8_t* xor_byte) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site_name);
  uint64_t draw = it == sites_.end()
                      ? FnvHash(site_name)  // unreachable in practice
                      : NextDraw(it->second);
  *position_seed = draw >> 8;
  // Never XOR with 0 — the fire must actually change the byte.
  *xor_byte = static_cast<uint8_t>(draw) | 1;
}

namespace internal {

Status FailpointStatusHit(const char* site) {
  std::optional<FailpointAction> action =
      FailpointRegistry::Global().Hit(site);
  if (!action.has_value()) return Status::Ok();
  switch (*action) {
    case FailpointAction::kError:
      return Status::Internal(std::string("failpoint fired: ") + site);
    case FailpointAction::kCrash:
      throw FailpointPanic(site);
    case FailpointAction::kDelay:
    case FailpointAction::kCorrupt:  // no buffer at a status site
      return Status::Ok();
  }
  return Status::Ok();
}

void FailpointSideEffectHit(const char* site) {
  std::optional<FailpointAction> action =
      FailpointRegistry::Global().Hit(site);
  if (action.has_value() && *action == FailpointAction::kCrash) {
    throw FailpointPanic(site);
  }
}

void FailpointCorruptHit(const char* site, std::string* bytes) {
  std::optional<FailpointAction> action =
      FailpointRegistry::Global().Hit(site);
  if (!action.has_value()) return;
  if (*action == FailpointAction::kCrash) throw FailpointPanic(site);
  if (*action != FailpointAction::kCorrupt || bytes->empty()) return;
  uint64_t position_seed = 0;
  uint8_t xor_byte = 0;
  FailpointRegistry::Global().CorruptionDraw(site, &position_seed, &xor_byte);
  (*bytes)[position_seed % bytes->size()] ^= static_cast<char>(xor_byte);
}

}  // namespace internal
}  // namespace opcqa

#endif  // OPCQA_FAILPOINTS
