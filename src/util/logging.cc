#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace opcqa {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] CHECK failed: " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace opcqa
