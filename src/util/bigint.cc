#include "util/bigint.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>

#include "util/logging.h"

namespace opcqa {

namespace {

constexpr uint64_t kBase = uint64_t{1} << 32;

// Small-value fast-path helpers: a magnitude of at most 2 limbs is a
// uint64. (Normalized vectors make the size test exact.)
inline bool FitsU64(const std::vector<uint32_t>& limbs) {
  return limbs.size() <= 2;
}

inline uint64_t MagU64(const std::vector<uint32_t>& limbs) {
  uint64_t value = limbs.empty() ? 0 : limbs[0];
  if (limbs.size() > 1) value |= static_cast<uint64_t>(limbs[1]) << 32;
  return value;
}

// Writes a uint64 magnitude into an existing limb vector, reusing its
// capacity (no allocation once the vector has ever held ≥ 2 limbs).
inline void SetMagU64(std::vector<uint32_t>* limbs, uint64_t value) {
  limbs->clear();
  if (value != 0) limbs->push_back(static_cast<uint32_t>(value));
  if (value >> 32) limbs->push_back(static_cast<uint32_t>(value >> 32));
}

#if defined(__SIZEOF_INT128__)
inline void SetMagU128(std::vector<uint32_t>* limbs, unsigned __int128 value) {
  limbs->clear();
  while (value != 0) {
    limbs->push_back(static_cast<uint32_t>(value));
    value >>= 32;
  }
}
#endif

// Signed ≤64-bit addition: the shared core of the operator+ / operator-
// fast paths (subtraction passes !b_negative). Writes the canonical
// magnitude/sign directly — no Canonicalize() needed afterwards.
inline void AddSignedU64(uint64_t a, bool a_negative, uint64_t b,
                         bool b_negative, std::vector<uint32_t>* limbs,
                         bool* negative) {
  if (a_negative == b_negative) {
    uint64_t sum = a + b;
    bool carry = sum < a;
    // The magnitude is zero only when there was no carry AND the low 64
    // bits are zero — a carry means the true value is 2^64 + sum.
    *negative = (carry || sum != 0) && a_negative;
    if (carry) {
      // Carry into bit 64: the full 65-bit magnitude, low limbs explicit.
      *limbs = {static_cast<uint32_t>(sum), static_cast<uint32_t>(sum >> 32),
                1u};
    } else {
      SetMagU64(limbs, sum);
    }
  } else if (a == b) {
    limbs->clear();
    *negative = false;
  } else if (a > b) {
    SetMagU64(limbs, a - b);
    *negative = a_negative;
  } else {
    SetMagU64(limbs, b - a);
    *negative = b_negative;
  }
}

}  // namespace

BigInt::BigInt(int64_t value) {
  negative_ = value < 0;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(value) + 1
                           : static_cast<uint64_t>(value);
  if (mag != 0) limbs_.push_back(static_cast<uint32_t>(mag));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
  Canonicalize();
}

BigInt::BigInt(uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<uint32_t>(value >> 32));
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  size_t i = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) {
    return Status::InvalidArgument("sign without digits in integer literal");
  }
  BigInt value;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid digit in integer literal: " +
                                     std::string(text));
    }
    value = value * BigInt(int64_t{10}) + BigInt(int64_t{c - '0'});
  }
  if (negative) value = -value;
  return value;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  uint64_t mag = (static_cast<uint64_t>(limbs_[1]) << 32) | limbs_[0];
  return negative_ ? mag <= (uint64_t{1} << 63)
                   : mag < (uint64_t{1} << 63);
}

int64_t BigInt::ToInt64() const {
  OPCQA_CHECK(FitsInt64()) << "BigInt does not fit int64: " << ToString();
  uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() > 1) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  return negative_ ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

void BigInt::Normalize(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

void BigInt::Canonicalize() {
  Normalize(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

void BigInt::AddMagInPlace(std::vector<uint32_t>* a,
                           const std::vector<uint32_t>& b) {
  if (b.size() > a->size()) a->resize(b.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    uint64_t sum = carry + (*a)[i] + (i < b.size() ? b[i] : 0u);
    (*a)[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) a->push_back(static_cast<uint32_t>(carry));
}

void BigInt::SubMagInPlace(std::vector<uint32_t>* a,
                           const std::vector<uint32_t>& b) {
  int64_t borrow = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    int64_t diff = static_cast<int64_t>((*a)[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<uint32_t>(diff);
  }
  OPCQA_CHECK_EQ(borrow, 0) << "SubMagInPlace requires |a| >= |b|";
  Normalize(a);
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> result;
  result.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0u);
    result.push_back(static_cast<uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) result.push_back(static_cast<uint32_t>(carry));
  return result;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  std::vector<uint32_t> result;
  result.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<uint32_t>(diff));
  }
  OPCQA_CHECK_EQ(borrow, 0) << "SubMag requires |a| >= |b|";
  Normalize(&result);
  return result;
}

std::vector<uint32_t> BigInt::MulMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> result(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + result[i + j] + carry;
      result[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  Normalize(&result);
  return result;
}

int BigInt::CompareMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// Shift-and-subtract long division on magnitudes: O(n * m) bit steps done
// limb-wise. Adequate for the limb counts this library produces (repair
// probabilities over chains of polynomial depth).
void BigInt::DivModMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b,
                       std::vector<uint32_t>* quotient,
                       std::vector<uint32_t>* remainder) {
  OPCQA_CHECK(!b.empty()) << "division by zero";
  quotient->clear();
  remainder->clear();
  if (CompareMag(a, b) < 0) {
    *remainder = a;
    return;
  }
  // Fast path: both magnitudes fit uint64 — one native division.
  if (FitsU64(a) && FitsU64(b)) {
    uint64_t dividend = MagU64(a);
    uint64_t divisor = MagU64(b);
    SetMagU64(quotient, dividend / divisor);
    SetMagU64(remainder, dividend % divisor);
    return;
  }
  // Fast path: single-limb divisor.
  if (b.size() == 1) {
    uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a[i];
      (*quotient)[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    Normalize(quotient);
    if (rem != 0) {
      remainder->push_back(static_cast<uint32_t>(rem));
      if (rem >> 32) remainder->push_back(static_cast<uint32_t>(rem >> 32));
    }
    return;
  }
  // General case: process dividend bits from most significant to least.
  size_t total_bits = a.size() * 32;
  std::vector<uint32_t> rem;
  std::vector<uint32_t> quot(a.size(), 0);
  for (size_t bit = total_bits; bit-- > 0;) {
    // rem = rem * 2 + bit(a, bit)
    uint32_t carry = 0;
    for (size_t i = 0; i < rem.size(); ++i) {
      uint32_t next_carry = rem[i] >> 31;
      rem[i] = (rem[i] << 1) | carry;
      carry = next_carry;
    }
    if (carry) rem.push_back(1);
    uint32_t a_bit = (a[bit / 32] >> (bit % 32)) & 1u;
    if (a_bit) {
      if (rem.empty()) rem.push_back(0);
      rem[0] |= 1u;
    }
    if (CompareMag(rem, b) >= 0) {
      rem = SubMag(rem, b);
      quot[bit / 32] |= (1u << (bit % 32));
    }
  }
  Normalize(&quot);
  *quotient = std::move(quot);
  *remainder = std::move(rem);
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result;
  if (FitsU64(limbs_) && FitsU64(other.limbs_)) {
    AddSignedU64(MagU64(limbs_), negative_, MagU64(other.limbs_),
                 other.negative_, &result.limbs_, &result.negative_);
    return result;
  }
  if (negative_ == other.negative_) {
    result.limbs_ = AddMag(limbs_, other.limbs_);
    result.negative_ = negative_;
  } else {
    int cmp = CompareMag(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      result.limbs_ = SubMag(limbs_, other.limbs_);
      result.negative_ = negative_;
    } else {
      result.limbs_ = SubMag(other.limbs_, limbs_);
      result.negative_ = other.negative_;
    }
  }
  result.Canonicalize();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (FitsU64(limbs_) && FitsU64(other.limbs_)) {
    // Subtraction is addition with other's sign flipped, skipping the
    // limb-vector copy that materializing `-other` would make.
    BigInt result;
    AddSignedU64(MagU64(limbs_), negative_, MagU64(other.limbs_),
                 !other.negative_, &result.limbs_, &result.negative_);
    return result;
  }
  return *this + (-other);
}

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt result;
#if defined(__SIZEOF_INT128__)
  if (FitsU64(limbs_) && FitsU64(other.limbs_)) {
    // ≤64-bit × ≤64-bit: one native 128-bit multiply, no MulMag temporary.
    unsigned __int128 product =
        static_cast<unsigned __int128>(MagU64(limbs_)) * MagU64(other.limbs_);
    SetMagU128(&result.limbs_, product);
    result.negative_ = negative_ != other.negative_;
    result.Canonicalize();
    return result;
  }
#endif
  result.limbs_ = MulMag(limbs_, other.limbs_);
  result.negative_ = negative_ != other.negative_;
  result.Canonicalize();
  return result;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (negative_ == other.negative_) {
    AddMagInPlace(&limbs_, other.limbs_);
  } else {
    int cmp = CompareMag(limbs_, other.limbs_);
    if (cmp == 0) {
      limbs_.clear();
    } else if (cmp > 0) {
      SubMagInPlace(&limbs_, other.limbs_);
    } else {
      // |other| dominates: compute |other| − |this| and take other's sign.
      limbs_ = SubMag(other.limbs_, limbs_);
      negative_ = other.negative_;
    }
  }
  Canonicalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  if (&other == this) {  // self-subtraction: negating `other` below would
    limbs_.clear();      // read the already-flipped sign
    negative_ = false;
    return *this;
  }
  negative_ = !negative_;
  *this += other;
  if (!limbs_.empty()) negative_ = !negative_;
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
#if defined(__SIZEOF_INT128__)
  if (FitsU64(limbs_) && FitsU64(other.limbs_)) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(MagU64(limbs_)) * MagU64(other.limbs_);
    negative_ = negative_ != other.negative_;
    SetMagU128(&limbs_, product);
    Canonicalize();
    return *this;
  }
#endif
  // Schoolbook multiplication needs a separate output buffer anyway.
  return *this = *this * other;
}

BigInt& BigInt::operator/=(const BigInt& other) {
  OPCQA_CHECK(!other.is_zero()) << "division by zero";
  if (FitsU64(limbs_) && FitsU64(other.limbs_)) {
    uint64_t q = MagU64(limbs_) / MagU64(other.limbs_);
    negative_ = q != 0 && (negative_ != other.negative_);
    SetMagU64(&limbs_, q);
    return *this;
  }
  return *this = *this / other;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  OPCQA_CHECK(!other.is_zero()) << "division by zero";
  if (FitsU64(limbs_) && FitsU64(other.limbs_)) {
    uint64_t r = MagU64(limbs_) % MagU64(other.limbs_);
    negative_ = r != 0 && negative_;  // remainder keeps the dividend's sign
    SetMagU64(&limbs_, r);
    return *this;
  }
  return *this = *this % other;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  std::vector<uint32_t> q;
  std::vector<uint32_t> r;
  DivModMag(a.limbs_, b.limbs_, &q, &r);
  quotient->limbs_ = std::move(q);
  quotient->negative_ = a.negative_ != b.negative_;
  quotient->Canonicalize();
  remainder->limbs_ = std::move(r);
  remainder->negative_ = a.negative_;
  remainder->Canonicalize();
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return r;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    // Euclid contracts operands quickly; once both magnitudes fit uint64
    // (immediately, for Rational::Reduce on small values) finish natively
    // without any per-step remainder allocation.
    if (FitsU64(a.limbs_) && FitsU64(b.limbs_)) {
      SetMagU64(&a.limbs_, std::gcd(MagU64(a.limbs_), MagU64(b.limbs_)));
      return a;
    }
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Pow(uint32_t exponent) const {
  BigInt result(int64_t{1});
  BigInt base = *this;
  while (exponent > 0) {
    if (exponent & 1u) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMag(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeated division by 10^9.
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  const uint64_t chunk = 1000000000;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / chunk);
      rem = cur % chunk;
    }
    Normalize(&mag);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

void BigInt::ToMantissaExp(double* mantissa, int64_t* exponent) const {
  if (is_zero()) {
    *mantissa = 0.0;
    *exponent = 0;
    return;
  }
  // Take the top (up to) 64 bits of the magnitude.
  size_t bits = BitLength();
  uint64_t top = 0;
  int taken = 0;
  for (size_t i = limbs_.size(); i-- > 0 && taken < 64;) {
    top = (top << 32) | limbs_[i];
    taken += 32;
  }
  // `top` holds the top `taken` bits; significant bits within: bits
  // mod 32 adjustment handled by shifting out leading zeros.
  int lead_zeros =
      taken - static_cast<int>(bits - (limbs_.size() - taken / 32) * 0);
  (void)lead_zeros;
  // Simpler: shift so the msb of `top` is bit (taken-1).
  while ((top >> 63) == 0) {
    top <<= 1;
    --taken;
  }
  double m = static_cast<double>(top) / std::ldexp(1.0, 64);  // in [0.5, 1)
  int64_t e = static_cast<int64_t>(bits);
  if (negative_) m = -m;
  *mantissa = m;
  *exponent = e;
}

double BigInt::ToDouble() const {
  double mantissa;
  int64_t exponent;
  ToMantissaExp(&mantissa, &exponent);
  if (exponent > 2000) {
    return negative_ ? -HUGE_VAL : HUGE_VAL;
  }
  return std::ldexp(mantissa, static_cast<int>(exponent));
}

size_t BigInt::Hash() const {
  size_t h = negative_ ? 0x9e3779b97f4a7c15ULL : 0;
  for (uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace opcqa
