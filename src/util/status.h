// Status / Result<T>: exception-free error propagation (Google style).
//
// Library entry points that can fail on *user input* (parsers, loaders,
// configuration) return Status or Result<T>. Internal invariant violations
// use OPCQA_CHECK instead.

#ifndef OPCQA_UTIL_STATUS_H_
#define OPCQA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace opcqa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kUnavailable,
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed Result is a checked fatal error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    OPCQA_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    OPCQA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    OPCQA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    OPCQA_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace opcqa

#endif  // OPCQA_UTIL_STATUS_H_
