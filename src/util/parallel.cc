#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/logging.h"

namespace opcqa {

namespace {

thread_local bool t_on_pool_worker = false;

}  // namespace

size_t DefaultThreads() {
  if (const char* env = std::getenv("OPCQA_THREADS")) {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t threads) {
  OPCQA_CHECK_GT(threads, 0u);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  // Intentionally leaked: workers must outlive every static destructor that
  // might still schedule work.
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OPCQA_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

void TaskGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  outstanding_ += n;
}

void TaskGroup::Done() {
  std::lock_guard<std::mutex> lock(mutex_);
  OPCQA_CHECK_GT(outstanding_, 0u) << "TaskGroup::Done without Add";
  // Notify under the lock: a Wait-then-destroy caller may tear the
  // condvar down the instant the predicate holds.
  if (--outstanding_ == 0) cv_.notify_all();
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared state of one ParallelFor call. Helpers and the caller claim
// indices from `next`; the caller blocks until `active_helpers` drops to 0,
// which keeps the by-reference `body` capture valid for the helpers.
struct ForState {
  const std::function<void(size_t)>* body;
  size_t n;
  std::atomic<size_t> next{0};
  std::mutex mutex;
  std::condition_variable done;
  size_t active_helpers = 0;
};

void DrainLoop(ForState* state) {
  for (;;) {
    size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) return;
    (*state->body)(i);
  }
}

}  // namespace

void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (threads == 0) threads = DefaultThreads();
  if (n == 1 || threads <= 1 || ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  size_t helpers = std::min(threads, n) - 1;  // caller participates
  auto state = std::make_shared<ForState>();
  state->body = &body;
  state->n = n;
  state->active_helpers = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    pool.Submit([state] {
      DrainLoop(state.get());
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->active_helpers == 0) state->done.notify_all();
    });
  }
  DrainLoop(state.get());
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->active_helpers == 0; });
}

}  // namespace opcqa
