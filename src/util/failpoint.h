// Deterministic fault injection — named failpoint sites threaded through
// every fallible layer (storage, repair cache, server, engine), compiled
// behind OPCQA_FAILPOINTS and *zero-overhead when disabled*: without the
// definition every OPCQA_FAILPOINT_* macro expands to `do {} while (0)`
// and failpoint.cc compiles to an empty translation unit, so release
// builds carry no branch, no symbol and no byte of the subsystem (the CI
// bench-smoke job asserts this with `nm` next to the pr7_serve_p95_ms
// perf gate).
//
// ## Why
//
// The operational semantics degrades gracefully by construction —
// truncated chains are sound anytime lower bounds, a lost snapshot is
// cold compute — but the system *around* it only degrades gracefully if
// every I/O, allocation and worker failure mode actually takes the
// degradation path. Hand-crafted failure tests probe a handful of those
// paths; the failpoint registry lets tests/chaos_test.cc enumerate every
// registered site, replay the PR 7 mixed serving trace under each one
// (and under randomized combinations), and assert byte-identity or a
// counted, correctly-coded fallback — never a crash, hang or wrong
// answer.
//
// ## Model
//
// A *site* is a name compiled into product code via one of the macros
// below. Sites are inert until a *spec* is enabled for their name:
//
//   action       what a firing site does
//     error        evaluate to an Internal error Status (the enclosing
//                  function returns it — OPCQA_FAILPOINT only)
//     corrupt      deterministically flip a byte of the caller's buffer
//                  (OPCQA_FAILPOINT_CORRUPT only)
//     delay        sleep delay_ms
//     crash        throw FailpointPanic — simulates a worker crashing
//                  mid-unit (callers that own threads must contain it;
//                  server/ocqa_server.cc isolates it per unit)
//
//   trigger      which hits fire
//     probability  each eligible hit fires with probability p, drawn from
//                  a per-site RNG stream seeded by (global seed ⊕
//                  FNV(site)) — deterministic for a fixed hit order
//     nth          only hit number `nth` (1-based) is eligible
//     max_fires    the site disarms after this many fires (count trigger;
//                  1 models a transient error that a retry survives)
//
// ## Scripting
//
// Tests use the RAII guard:
//
//   FailpointScope fp("storage.snapshot_store.write",
//                     FailpointSpec{FailpointAction::kError});
//
// Processes (the CLI, benches) use the OPCQA_FAILPOINTS environment
// variable, parsed on first registry use:
//
//   OPCQA_FAILPOINTS='repair_cache.spill=error,p=0.1;server.unit=crash,nth=3'
//
// Spec grammar: site=action[,p=<float>][,nth=<n>][,count=<n>][,delay=<ms>]
// with ';' separating sites.

#ifndef OPCQA_UTIL_FAILPOINT_H_
#define OPCQA_UTIL_FAILPOINT_H_

#ifdef OPCQA_FAILPOINTS

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace opcqa {

enum class FailpointAction { kError, kCorrupt, kDelay, kCrash };

/// Thrown by kCrash sites: a simulated worker panic. Derived from
/// std::runtime_error so generic per-unit isolation (catch
/// std::exception) contains it like any real defect would be.
class FailpointPanic : public std::runtime_error {
 public:
  explicit FailpointPanic(const std::string& site)
      : std::runtime_error("failpoint panic at " + site) {}
};

struct FailpointSpec {
  FailpointAction action = FailpointAction::kError;
  /// Chance an eligible hit fires, drawn from the site's seeded stream.
  double probability = 1.0;
  /// Disarm after this many fires (UINT64_MAX = never).
  uint64_t max_fires = UINT64_MAX;
  /// When nonzero, only the nth hit (1-based) of the site is eligible.
  uint64_t nth = 0;
  /// Sleep for kDelay, in milliseconds.
  uint64_t delay_ms = 0;
};

struct FailpointStats {
  uint64_t hits = 0;   // times an enabled site was evaluated
  uint64_t fires = 0;  // times it actually triggered its action
};

/// The canonical list of compiled-in sites — tests/chaos_test.cc sweeps
/// it, README.md documents it. Keep in sync with the OPCQA_FAILPOINT_*
/// macros in src/ (chaos_test's per-site sweep fails on a listed name
/// whose site no longer fires).
inline constexpr const char* kFailpointSites[] = {
    "storage.snapshot_store.write",    // error|delay: temp-file write/fsync
    "storage.snapshot_store.rename",   // error: publish rename
    "storage.snapshot_store.read",     // error: Get() stream read
    "storage.snapshot_store.corrupt",  // corrupt: Get() returned bytes
    "storage.snapshot_store.append",   // error|delay: delta-log append
    "repair_cache.spill",              // error|delay: spill task, pre-Put
    "repair_cache.compact",            // error|delay: log compaction, pre-Put
    "repair_cache.restore",            // error|delay: restore, pre-Get
    "server.unit",                     // crash|delay: read member, pre-exec
    "engine.session.enumerate",        // crash|delay: chain walk entry
};

class FailpointRegistry {
 public:
  /// The process-global registry. First use parses the OPCQA_FAILPOINTS
  /// environment variable (malformed specs are logged and ignored — a
  /// fault injector must not become a fault).
  static FailpointRegistry& Global();

  /// Arms `site` with `spec`, replacing any existing spec and resetting
  /// the site's counters and RNG stream.
  void Enable(const std::string& site, FailpointSpec spec);
  void Disable(const std::string& site);
  void DisableAll();

  /// Reseeds every site stream (and resets counters) — chaos sweeps call
  /// this per iteration so runs are reproducible from (seed, spec set).
  void SetSeed(uint64_t seed);

  /// Parses the environment grammar above; enables every site it names.
  Status EnableFromSpec(std::string_view spec);

  FailpointStats StatsFor(const std::string& site) const;
  uint64_t TotalFires() const;

  /// True when any site is armed — the macros' fast path is one relaxed
  /// atomic load, so a failpoint build with nothing enabled stays within
  /// noise of the stock build.
  bool Armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates one hit of `site`: nullopt when the site is disabled or
  /// its trigger does not fire. kDelay sleeps internally and still
  /// returns the action (for counting by the caller-side helpers).
  std::optional<FailpointAction> Hit(const char* site);

  /// Deterministic byte position/value for a kCorrupt fire at `site`,
  /// drawn from the same per-site stream as the trigger.
  void CorruptionDraw(const char* site, uint64_t* position_seed,
                      uint8_t* xor_byte);

 private:
  struct Site {
    FailpointSpec spec;
    uint64_t rng_state = 0;  // SplitMix64 stream; see failpoint.cc
    FailpointStats stats;
  };

  FailpointRegistry();
  uint64_t NextDraw(Site& site);

  mutable std::mutex mutex_;
  std::map<std::string, Site> sites_;
  uint64_t seed_ = 0x5EEDF417;
  std::atomic<bool> armed_{false};
};

/// RAII test guard: arms `site` on construction, disarms it on
/// destruction. Scopes may nest over distinct sites; re-arming the same
/// site inside an open scope leaves the inner spec until the outer guard
/// tears it down.
class FailpointScope {
 public:
  FailpointScope(std::string site, FailpointSpec spec)
      : site_(std::move(site)) {
    FailpointRegistry::Global().Enable(site_, spec);
  }
  ~FailpointScope() { FailpointRegistry::Global().Disable(site_); }

  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;

 private:
  std::string site_;
};

namespace internal {

/// kError → error Status; kDelay → sleep, OK; kCrash → throw; kCorrupt
/// is meaningless without a buffer and is ignored.
Status FailpointStatusHit(const char* site);
/// Like FailpointStatusHit but for sites in non-Status code paths:
/// kError is ignored (nothing to return through), kDelay/kCrash apply.
void FailpointSideEffectHit(const char* site);
/// kCorrupt → XOR one deterministic byte of *bytes (no-op on empty);
/// kDelay/kCrash also apply, kError is ignored.
void FailpointCorruptHit(const char* site, std::string* bytes);

}  // namespace internal
}  // namespace opcqa

/// Site in a function returning Status (or Result<T>): a firing kError
/// spec makes the function return Internal("failpoint fired: <site>").
#define OPCQA_FAILPOINT(site)                                            \
  do {                                                                   \
    if (::opcqa::FailpointRegistry::Global().Armed()) {                  \
      ::opcqa::Status _opcqa_fp_status =                                 \
          ::opcqa::internal::FailpointStatusHit(site);                   \
      if (!_opcqa_fp_status.ok()) return _opcqa_fp_status;               \
    }                                                                    \
  } while (0)

/// Site in any code path: delay/crash actions only (nothing to return).
#define OPCQA_FAILPOINT_HIT(site)                                        \
  do {                                                                   \
    if (::opcqa::FailpointRegistry::Global().Armed()) {                  \
      ::opcqa::internal::FailpointSideEffectHit(site);                   \
    }                                                                    \
  } while (0)

/// Site over a byte buffer: a firing kCorrupt spec flips one byte of
/// `*buffer` (std::string*), deterministically per (seed, site, hit).
#define OPCQA_FAILPOINT_CORRUPT(site, buffer)                            \
  do {                                                                   \
    if (::opcqa::FailpointRegistry::Global().Armed()) {                  \
      ::opcqa::internal::FailpointCorruptHit(site, buffer);              \
    }                                                                    \
  } while (0)

#else  // !OPCQA_FAILPOINTS

// Disabled build: the sites vanish. No registry, no atomic load, no
// symbols — `nm libopcqa.a | grep -i failpoint` finds nothing (asserted
// in CI bench-smoke).
#define OPCQA_FAILPOINT(site) \
  do {                        \
  } while (0)
#define OPCQA_FAILPOINT_HIT(site) \
  do {                            \
  } while (0)
#define OPCQA_FAILPOINT_CORRUPT(site, buffer) \
  do {                                        \
  } while (0)

#endif  // OPCQA_FAILPOINTS

#endif  // OPCQA_UTIL_FAILPOINT_H_
