#include "util/random.h"

#include "util/logging.h"

namespace opcqa {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  OPCQA_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  OPCQA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    OPCQA_CHECK_GE(w, 0.0);
    total += w;
  }
  OPCQA_CHECK_GT(total, 0.0) << "all weights zero";
  double x = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (x < cumulative) return i;
  }
  // Floating-point edge: return last non-zero weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::WeightedIndex(const std::vector<Rational>& weights) {
  std::vector<double> approx;
  approx.reserve(weights.size());
  for (const Rational& w : weights) {
    OPCQA_CHECK(!w.is_negative()) << "negative weight " << w;
    approx.push_back(w.ToDouble());
  }
  return WeightedIndex(approx);
}

Rng Rng::Fork() { return Rng(Next()); }

Rng Rng::Stream(uint64_t seed, uint64_t stream) {
  // Mix the seed, fold the stream index in, and mix again; the Rng
  // constructor runs SplitMix64 once more to spread the result over the
  // 256-bit xoshiro state.
  uint64_t z = seed;
  uint64_t mixed_seed = SplitMix64(&z);
  z = mixed_seed ^ stream;
  return Rng(SplitMix64(&z));
}

}  // namespace opcqa
