#include "util/rational.h"

#include <cmath>
#include <ostream>

#include "util/logging.h"

namespace opcqa {

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  OPCQA_CHECK(!den_.is_zero()) << "Rational with zero denominator";
  Reduce();
}

void Rational::Reduce() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(int64_t{1});
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(int64_t{1})) {
    num_ /= g;
    den_ /= g;
  }
}

Result<Rational> Rational::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty rational literal");
  size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    auto num = BigInt::FromString(text.substr(0, slash));
    if (!num.ok()) return num.status();
    auto den = BigInt::FromString(text.substr(slash + 1));
    if (!den.ok()) return den.status();
    if (den->is_zero()) {
      return Status::InvalidArgument("zero denominator: " + std::string(text));
    }
    return Rational(std::move(num).value(), std::move(den).value());
  }
  size_t dot = text.find('.');
  if (dot != std::string_view::npos) {
    std::string digits(text.substr(0, dot));
    std::string frac(text.substr(dot + 1));
    if (frac.empty()) {
      return Status::InvalidArgument("trailing dot in rational literal");
    }
    auto whole = BigInt::FromString(digits.empty() ? "0" : digits);
    if (!whole.ok()) return whole.status();
    auto frac_num = BigInt::FromString(frac);
    if (!frac_num.ok()) return frac_num.status();
    if (frac_num->is_negative()) {
      return Status::InvalidArgument("sign inside fraction digits");
    }
    BigInt scale = BigInt(int64_t{10}).Pow(static_cast<uint32_t>(frac.size()));
    bool negative = !digits.empty() && digits[0] == '-';
    BigInt numerator = whole->Abs() * scale + frac_num.value();
    if (negative) numerator = -numerator;
    return Rational(std::move(numerator), std::move(scale));
  }
  auto num = BigInt::FromString(text);
  if (!num.ok()) return num.status();
  return Rational(std::move(num).value());
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.num_ = -result.num_;
  return result;
}

// The operators reduce through the constructor; the gcd/divmod inside
// Reduce() and the cross products below all ride the BigInt ≤64-bit fast
// paths for the small values chain probabilities are made of. (A
// Knuth-4.5.1 gcd-aware variant of these operators was measured and
// rejected: on the enumerator's mass-accumulation workload the two extra
// big-operand gcds per operation cost more than the single post-product
// reduction they replace.)

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  OPCQA_CHECK(!other.is_zero()) << "Rational division by zero";
  return Rational(num_ * other.den_, den_ * other.num_);
}

int Rational::Compare(const Rational& other) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (num_ * other.den_).Compare(other.num_ * den_);
}

std::string Rational::ToString() const {
  if (den_ == BigInt(int64_t{1})) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double Rational::ToDouble() const {
  if (num_.is_zero()) return 0.0;
  double num_m, den_m;
  int64_t num_e, den_e;
  num_.ToMantissaExp(&num_m, &num_e);
  den_.ToMantissaExp(&den_m, &den_e);
  double ratio = num_m / den_m;
  int64_t exp = num_e - den_e;
  if (exp > 2000) return num_.is_negative() ? -HUGE_VAL : HUGE_VAL;
  if (exp < -2000) return 0.0;
  return std::ldexp(ratio, static_cast<int>(exp));
}

size_t Rational::Hash() const {
  size_t h = num_.Hash();
  h ^= den_.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace opcqa
