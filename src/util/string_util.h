// Small string helpers shared across parsers and printers.

#ifndef OPCQA_UTIL_STRING_UTIL_H_
#define OPCQA_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace opcqa {

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view text);
std::string Trim(std::string_view text);

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on `sep` at depth 0 with respect to '(' / ')' nesting — used to
/// split conjunctions "R(x,y), S(y,z)" without breaking inside atoms.
std::vector<std::string> SplitTopLevel(std::string_view text, char sep);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Streams all arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// True when `text` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view text);

}  // namespace opcqa

#endif  // OPCQA_UTIL_STRING_UTIL_H_
