// Thread pool and deterministic parallel iteration.
//
// All parallelism in OpCQA flows through ParallelFor/ParallelMap so that
// results are reproducible by construction: work items are identified by
// index, per-item results are stored at their index, and callers reduce in
// index order. Which thread executes which index is scheduling-dependent
// (a shared atomic cursor balances load), but because no item reads another
// item's output, the reduction sees identical inputs for every thread
// count — including 1.
//
// Worker threads come from a lazily-started process-global ThreadPool sized
// by DefaultThreads(). Requesting more parallelism than the pool has
// workers is valid (the pool bounds concurrency, not correctness), as is
// calling ParallelFor from inside a pool worker (the nested loop runs
// inline on that worker, avoiding pool starvation deadlocks).
//
// Bodies must not throw: like the rest of the codebase, failures are
// OPCQA_CHECK aborts, and an exception escaping a worker would terminate.

#ifndef OPCQA_UTIL_PARALLEL_H_
#define OPCQA_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace opcqa {

/// Default worker count: the OPCQA_THREADS environment variable when set to
/// a positive integer, otherwise std::thread::hardware_concurrency()
/// (always ≥ 1).
size_t DefaultThreads();

/// A fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-global pool (DefaultThreads() workers, started on first
  /// use and never torn down).
  static ThreadPool& Global();

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this process's pool workers.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Tracks a set of in-flight tasks across threads: Add() before handing a
/// task to an executor, Done() when it completes, Wait() blocks until the
/// outstanding count returns to zero. Unlike ParallelFor (which owns its
/// work items for the duration of one call), a TaskGroup lets a long-lived
/// component — the serving front end draining its request queue — wait for
/// work that was submitted from many call sites at many times.
class TaskGroup {
 public:
  /// Registers `n` not-yet-completed tasks.
  void Add(size_t n = 1);
  /// Marks one task complete; wakes waiters when the count hits zero.
  void Done();
  /// Blocks until every added task has called Done(). Safe to call from
  /// several threads; all of them wake on the zero crossing.
  void Wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
};

/// Runs body(i) for every i in [0, n), using up to `threads` concurrent
/// executors (the calling thread participates; helpers come from the global
/// pool). threads == 0 means DefaultThreads(). Indices are claimed from a
/// shared cursor, so per-index work may run on any thread and in any order;
/// the call returns only after every index has completed. Runs inline (in
/// index order) when n ≤ 1, threads ≤ 1, or when already on a pool worker.
void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& body);

/// Maps fn over [0, n) with ParallelFor and returns the results in index
/// order — the deterministic reduction order for parallel aggregation.
/// T must be default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, size_t threads, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(n, threads, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace opcqa

#endif  // OPCQA_UTIL_PARALLEL_H_
