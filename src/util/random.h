// Deterministic pseudo-random number generation.
//
// All randomness in OpCQA (the Sample algorithm, workload generators) flows
// through Rng so that tests and benchmarks are reproducible from a seed.
// The generator is xoshiro256** seeded via SplitMix64.

#ifndef OPCQA_UTIL_RANDOM_H_
#define OPCQA_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/rational.h"

namespace opcqa {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound); CHECK-fails when bound == 0. Unbiased
  /// (rejection sampling).
  uint64_t UniformInt(uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Index sampled proportionally to non-negative `weights`; CHECK-fails if
  /// all weights are zero or the vector is empty.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Index sampled proportionally to exact rational weights. The choice is
  /// made with 64 random bits against exact cumulative sums converted once
  /// to double; bias is bounded by double rounding (~2^-52), negligible for
  /// the additive-error regime this library targets.
  size_t WeightedIndex(const std::vector<Rational>& weights);

  /// Derives an independent child generator (for per-worker streams).
  /// Stateful: advances this generator, so the child depends on how many
  /// values were drawn before the fork.
  Rng Fork();

  /// The generator for stream `stream` of `seed` — a pure function of the
  /// pair, so walk i of a seeded run draws the same values no matter which
  /// thread (or how many threads) execute the run. Distinct stream indices
  /// yield statistically independent sequences (SplitMix64 decorrelation).
  static Rng Stream(uint64_t seed, uint64_t stream);

 private:
  uint64_t state_[4];
};

}  // namespace opcqa

#endif  // OPCQA_UTIL_RANDOM_H_
