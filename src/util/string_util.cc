#include "util/string_util.h"

#include <cctype>

namespace opcqa {

std::string_view TrimView(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Trim(std::string_view text) { return std::string(TrimView(text)); }

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string> SplitTopLevel(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == sep && depth == 0)) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
      continue;
    }
    if (text[i] == '(') ++depth;
    if (text[i] == ')') --depth;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result += sep;
    result += pieces[i];
  }
  return result;
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  char first = text[0];
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
    return false;
  }
  for (char c : text.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

}  // namespace opcqa
