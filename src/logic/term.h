// Terms: variables or constants, as they occur in atoms of constraints and
// queries. Variable names are interned in a process-global table (disjoint
// from the constant table, mirroring the paper's V ∩ C = ∅).

#ifndef OPCQA_LOGIC_TERM_H_
#define OPCQA_LOGIC_TERM_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "relational/symbol_table.h"

namespace opcqa {

/// Dense handle for an interned variable name.
using VarId = uint32_t;

/// Interns a variable name in the global variable table.
VarId Var(std::string_view name);

/// Name of an interned variable.
const std::string& VarName(VarId id);

class Term {
 public:
  /// Default: constant 0 (valid but rarely meaningful; prefer factories).
  Term() : is_var_(false), id_(0) {}

  static Term MakeVar(VarId id) { return Term(true, id); }
  static Term MakeConst(ConstId id) { return Term(false, id); }
  /// Interning factories from names.
  static Term MakeVar(std::string_view name) { return MakeVar(Var(name)); }
  static Term MakeConst(std::string_view name) {
    return MakeConst(Const(name));
  }

  bool is_var() const { return is_var_; }
  bool is_const() const { return !is_var_; }
  VarId var() const;
  ConstId constant() const;

  auto operator<=>(const Term&) const = default;

  /// Variable or constant name.
  std::string ToString() const;

 private:
  Term(bool is_var, uint32_t id) : is_var_(is_var), id_(id) {}

  bool is_var_;
  uint32_t id_;
};

}  // namespace opcqa

#endif  // OPCQA_LOGIC_TERM_H_
