#include "logic/atom.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

bool Atom::is_ground() const {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const Term& t) { return t.is_const(); });
}

Fact Atom::ToFact() const {
  std::vector<ConstId> args;
  args.reserve(terms_.size());
  for (const Term& t : terms_) {
    OPCQA_CHECK(t.is_const()) << "ToFact on non-ground atom";
    args.push_back(t.constant());
  }
  return Fact(pred_, std::move(args));
}

void Atom::CollectVariables(std::vector<VarId>* out) const {
  for (const Term& t : terms_) {
    if (t.is_var() &&
        std::find(out->begin(), out->end(), t.var()) == out->end()) {
      out->push_back(t.var());
    }
  }
}

void Atom::CollectConstants(std::vector<ConstId>* out) const {
  for (const Term& t : terms_) {
    if (t.is_const() &&
        std::find(out->begin(), out->end(), t.constant()) == out->end()) {
      out->push_back(t.constant());
    }
  }
}

std::string Atom::ToString(const Schema& schema) const {
  std::string out = schema.RelationName(pred_);
  out += "(";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += ",";
    out += terms_[i].ToString();
  }
  out += ")";
  return out;
}

std::vector<VarId> Conjunction::Variables() const {
  std::vector<VarId> vars;
  for (const Atom& atom : atoms_) atom.CollectVariables(&vars);
  return vars;
}

std::vector<ConstId> Conjunction::Constants() const {
  std::vector<ConstId> constants;
  for (const Atom& atom : atoms_) atom.CollectConstants(&constants);
  return constants;
}

std::string Conjunction::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const Atom& atom : atoms_) parts.push_back(atom.ToString(schema));
  return Join(parts, ", ");
}

}  // namespace opcqa
