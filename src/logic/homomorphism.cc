#include "logic/homomorphism.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

std::optional<ConstId> Assignment::Get(VarId var) const {
  for (const auto& [v, value] : map_) {
    if (v == var) return value;
    if (v > var) break;
  }
  return std::nullopt;
}

void Assignment::Bind(VarId var, ConstId value) {
  auto it = map_.begin();
  while (it != map_.end() && it->first < var) ++it;
  if (it != map_.end() && it->first == var) {
    OPCQA_CHECK_EQ(it->second, value)
        << "rebinding " << VarName(var) << " to a different constant";
    return;
  }
  map_.insert(it, {var, value});
}

void Assignment::Unbind(VarId var) {
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (it->first == var) {
      map_.erase(it);
      return;
    }
    if (it->first > var) return;
  }
}

ConstId Assignment::Apply(const Term& term) const {
  if (term.is_const()) return term.constant();
  auto value = Get(term.var());
  OPCQA_CHECK(value.has_value())
      << "unbound variable " << VarName(term.var());
  return *value;
}

Fact Assignment::Apply(const Atom& atom) const {
  std::vector<ConstId> args;
  args.reserve(atom.arity());
  for (const Term& t : atom.terms()) args.push_back(Apply(t));
  return Fact(atom.pred(), std::move(args));
}

std::vector<Fact> Assignment::ApplyAll(const Conjunction& conjunction) const {
  std::vector<Fact> facts;
  facts.reserve(conjunction.size());
  for (const Atom& atom : conjunction.atoms()) facts.push_back(Apply(atom));
  std::sort(facts.begin(), facts.end());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  return facts;
}

bool Assignment::ExtendedBy(const Assignment& other) const {
  for (const auto& [var, value] : map_) {
    auto theirs = other.Get(var);
    if (!theirs.has_value() || *theirs != value) return false;
  }
  return true;
}

std::string Assignment::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(map_.size());
  for (const auto& [var, value] : map_) {
    parts.push_back(StrCat(VarName(var), "->", ConstName(value)));
  }
  return "{" + Join(parts, ", ") + "}";
}

namespace {

// Backtracking conjunctive matcher. Atoms are chosen most-bound-first,
// candidates are the facts of the atom's relation.
class Searcher {
 public:
  Searcher(const Conjunction& conjunction, const Database& db,
           const std::function<bool(const Assignment&)>& callback)
      : atoms_(conjunction.atoms()),
        db_(db),
        callback_(callback),
        used_(atoms_.size(), false) {}

  size_t Run(const Assignment& partial) {
    assign_ = partial;
    count_ = 0;
    stop_ = false;
    Recurse(atoms_.size());
    return count_;
  }

 private:
  // Number of terms of `atom` already determined under assign_.
  size_t BoundTerms(const Atom& atom) const {
    size_t bound = 0;
    for (const Term& t : atom.terms()) {
      if (t.is_const() || assign_.IsBound(t.var())) ++bound;
    }
    return bound;
  }

  void Recurse(size_t remaining) {
    if (stop_) return;
    if (remaining == 0) {
      ++count_;
      if (!callback_(assign_)) stop_ = true;
      return;
    }
    // Pick the unused atom with the most bound terms (cheap selectivity
    // heuristic that makes chained joins near-linear).
    size_t best = atoms_.size();
    size_t best_bound = 0;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (used_[i]) continue;
      size_t bound = BoundTerms(atoms_[i]);
      if (best == atoms_.size() || bound > best_bound) {
        best = i;
        best_bound = bound;
      }
    }
    const Atom& atom = atoms_[best];
    used_[best] = true;
    const FactStore& store = FactStore::Global();
    for (FactId id : db_.FactsOf(atom.pred())) {
      std::vector<VarId> newly_bound;
      if (Unify(atom, store.View(id), &newly_bound)) {
        Recurse(remaining - 1);
      }
      for (VarId v : newly_bound) assign_.Unbind(v);
      if (stop_) break;
    }
    used_[best] = false;
  }

  bool Unify(const Atom& atom, const FactView& fact,
             std::vector<VarId>* newly_bound) {
    for (size_t i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.terms()[i];
      ConstId value = fact.args[i];
      if (t.is_const()) {
        if (t.constant() != value) return false;
        continue;
      }
      auto bound = assign_.Get(t.var());
      if (bound.has_value()) {
        if (*bound != value) return false;
      } else {
        assign_.Bind(t.var(), value);
        newly_bound->push_back(t.var());
      }
    }
    return true;
  }

  const std::vector<Atom>& atoms_;
  const Database& db_;
  const std::function<bool(const Assignment&)>& callback_;
  std::vector<bool> used_;
  Assignment assign_;
  size_t count_ = 0;
  bool stop_ = false;
};

}  // namespace

size_t FindHomomorphisms(
    const Conjunction& conjunction, const Database& db,
    const Assignment& partial,
    const std::function<bool(const Assignment&)>& callback) {
  OPCQA_CHECK(!conjunction.empty())
      << "constraints/queries have non-empty conjunctions";
  Searcher searcher(conjunction, db, callback);
  return searcher.Run(partial);
}

bool HasHomomorphism(const Conjunction& conjunction, const Database& db,
                     const Assignment& partial) {
  bool found = false;
  FindHomomorphisms(conjunction, db, partial, [&](const Assignment&) {
    found = true;
    return false;
  });
  return found;
}

std::vector<Assignment> AllHomomorphisms(const Conjunction& conjunction,
                                         const Database& db,
                                         const Assignment& partial) {
  std::vector<Assignment> all;
  FindHomomorphisms(conjunction, db, partial, [&](const Assignment& a) {
    all.push_back(a);
    return true;
  });
  return all;
}

}  // namespace opcqa
