// First-order formulas over a relational schema.
//
// The query language of the paper is full first-order logic; operational
// consistent answers are defined for arbitrary FO queries (Definition 7),
// and the additive-error approximation of Theorem 9 covers all of them.
//
// Formulas are immutable trees shared via shared_ptr<const Formula>.

#ifndef OPCQA_LOGIC_FORMULA_H_
#define OPCQA_LOGIC_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "logic/atom.h"

namespace opcqa {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,      // R(t1,...,tn)
    kEquals,    // t1 = t2
    kNot,       // ¬φ
    kAnd,       // φ1 ∧ ... ∧ φk
    kOr,        // φ1 ∨ ... ∨ φk
    kExists,    // ∃x1...xk φ
    kForall,    // ∀x1...xk φ
  };

  Kind kind() const { return kind_; }

  /// Payload accessors; CHECK-fail when the kind does not match.
  const Atom& atom() const;
  const Term& lhs() const;
  const Term& rhs() const;
  const std::vector<FormulaPtr>& children() const;
  const FormulaPtr& child() const;
  const std::vector<VarId>& quantified() const;

  /// Free variables, in order of first occurrence.
  std::vector<VarId> FreeVariables() const;

  std::string ToString(const Schema& schema) const;

  // ---- Factories ----
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr MakeAtom(Atom atom);
  static FormulaPtr Equals(Term lhs, Term rhs);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(std::vector<FormulaPtr> children);
  static FormulaPtr Or(std::vector<FormulaPtr> children);
  /// φ → ψ, desugared to ¬φ ∨ ψ.
  static FormulaPtr Implies(FormulaPtr premise, FormulaPtr conclusion);
  static FormulaPtr Exists(std::vector<VarId> vars, FormulaPtr f);
  static FormulaPtr Forall(std::vector<VarId> vars, FormulaPtr f);
  /// Conjunction of atoms as a formula.
  static FormulaPtr FromConjunction(const Conjunction& conjunction);

 private:
  explicit Formula(Kind kind) : kind_(kind) {}

  void CollectFreeVariables(std::vector<VarId>* bound,
                            std::vector<VarId>* free) const;

  Kind kind_;
  Atom atom_;
  Term lhs_, rhs_;
  std::vector<FormulaPtr> children_;
  std::vector<VarId> quantified_;
};

}  // namespace opcqa

#endif  // OPCQA_LOGIC_FORMULA_H_
