#include "logic/term.h"

#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace opcqa {

namespace {

// Variable name interning (separate universe from constants).
// Thread-safety: mutex-serialized and append-only, like SymbolTable — see
// the concurrency contract in relational/fact_store.h.
class VarTable {
 public:
  static VarTable& Global() {
    static VarTable* table = new VarTable();
    return *table;
  }

  VarId Intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    VarId id = static_cast<VarId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  const std::string& NameOf(VarId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    OPCQA_CHECK_LT(id, names_.size()) << "unknown VarId";
    return names_[id];
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, VarId> index_;
};

}  // namespace

VarId Var(std::string_view name) { return VarTable::Global().Intern(name); }

const std::string& VarName(VarId id) { return VarTable::Global().NameOf(id); }

VarId Term::var() const {
  OPCQA_CHECK(is_var_) << "Term::var() on a constant";
  return id_;
}

ConstId Term::constant() const {
  OPCQA_CHECK(!is_var_) << "Term::constant() on a variable";
  return id_;
}

std::string Term::ToString() const {
  return is_var_ ? VarName(id_) : ConstName(id_);
}

}  // namespace opcqa
