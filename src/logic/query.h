// Queries Q(x̄) = { x̄ | ϕ } and their evaluation.
//
// Evaluation loops free-variable tuples over the active domain and checks
// D ⊨ ϕ(c̄); pure conjunctive queries short-circuit into the homomorphism
// matcher (orders of magnitude faster for joins, and the common case in the
// paper's hardness results and in the Section 5 scheme).

#ifndef OPCQA_LOGIC_QUERY_H_
#define OPCQA_LOGIC_QUERY_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "logic/fo_eval.h"
#include "logic/formula.h"

namespace opcqa {

/// An answer tuple.
using Tuple = std::vector<ConstId>;

/// Structure of a conjunctive query: ∃ z̄ (A1 ∧ ... ∧ Ak).
struct ConjunctiveView {
  Conjunction body;
  std::vector<VarId> existential;
};

class Query {
 public:
  Query() = default;
  /// A query named `name` with free variables `head` and body `body`.
  /// CHECK-fails unless FreeVariables(body) ⊆ head.
  Query(std::string name, std::vector<VarId> head, FormulaPtr body);

  const std::string& name() const { return name_; }
  const std::vector<VarId>& head() const { return head_; }
  const FormulaPtr& body() const { return body_; }
  size_t arity() const { return head_.size(); }

  /// True when the body is (∃-prefixed) conjunction of atoms only.
  bool IsConjunctive() const { return conjunctive_.has_value(); }
  const std::optional<ConjunctiveView>& conjunctive_view() const {
    return conjunctive_;
  }

  /// All answers over dom(D)^arity.
  std::set<Tuple> Evaluate(const Database& db) const;

  /// True when `tuple` ∈ Q(D). `tuple` may contain constants outside
  /// dom(D): per the paper's semantics such tuples are never answers unless
  /// arity is 0 (Boolean query).
  bool Contains(const Database& db, const Tuple& tuple) const;

  std::string ToString(const Schema& schema) const;

 private:
  void AnalyzeConjunctive();

  std::string name_;
  std::vector<VarId> head_;
  FormulaPtr body_;
  std::optional<ConjunctiveView> conjunctive_;
};

/// Renders a tuple as "(a,b,c)".
std::string TupleToString(const Tuple& tuple);

}  // namespace opcqa

#endif  // OPCQA_LOGIC_QUERY_H_
