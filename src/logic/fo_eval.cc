#include "logic/fo_eval.h"

#include "util/logging.h"

namespace opcqa {

namespace {

class Evaluator {
 public:
  Evaluator(const Database& db, const std::vector<ConstId>& domain)
      : db_(db), domain_(domain) {}

  bool Eval(const Formula& f, Assignment* env) {
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        return true;
      case Formula::Kind::kFalse:
        return false;
      case Formula::Kind::kAtom:
        return db_.Contains(env->Apply(f.atom()));
      case Formula::Kind::kEquals:
        return env->Apply(f.lhs()) == env->Apply(f.rhs());
      case Formula::Kind::kNot:
        return !Eval(*f.child(), env);
      case Formula::Kind::kAnd:
        for (const FormulaPtr& c : f.children()) {
          if (!Eval(*c, env)) return false;
        }
        return true;
      case Formula::Kind::kOr:
        for (const FormulaPtr& c : f.children()) {
          if (Eval(*c, env)) return true;
        }
        return false;
      case Formula::Kind::kExists:
        return Quantify(f, env, /*existential=*/true, 0);
      case Formula::Kind::kForall:
        return Quantify(f, env, /*existential=*/false, 0);
    }
    OPCQA_CHECK(false) << "unreachable";
    return false;
  }

 private:
  bool Quantify(const Formula& f, Assignment* env, bool existential,
                size_t index) {
    if (index == f.quantified().size()) {
      return Eval(*f.child(), env);
    }
    VarId var = f.quantified()[index];
    // A quantified variable may shadow an outer binding of the same name;
    // save and restore it.
    std::optional<ConstId> saved = env->Get(var);
    bool result = !existential;
    for (ConstId value : domain_) {
      env->Unbind(var);
      env->Bind(var, value);
      bool sub = Quantify(f, env, existential, index + 1);
      if (existential && sub) {
        result = true;
        break;
      }
      if (!existential && !sub) {
        result = false;
        break;
      }
    }
    env->Unbind(var);
    if (saved.has_value()) env->Bind(var, *saved);
    return result;
  }

  const Database& db_;
  const std::vector<ConstId>& domain_;
};

}  // namespace

bool EvalFormula(const Formula& formula, const Database& db,
                 const std::vector<ConstId>& domain,
                 const Assignment& assignment) {
  Assignment env = assignment;
  Evaluator evaluator(db, domain);
  return evaluator.Eval(formula, &env);
}

bool EvalFormula(const Formula& formula, const Database& db,
                 const Assignment& assignment) {
  std::vector<ConstId> domain = db.ActiveDomain();
  return EvalFormula(formula, db, domain, assignment);
}

}  // namespace opcqa
