#include "logic/formula.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

const Atom& Formula::atom() const {
  OPCQA_CHECK(kind_ == Kind::kAtom);
  return atom_;
}

const Term& Formula::lhs() const {
  OPCQA_CHECK(kind_ == Kind::kEquals);
  return lhs_;
}

const Term& Formula::rhs() const {
  OPCQA_CHECK(kind_ == Kind::kEquals);
  return rhs_;
}

const std::vector<FormulaPtr>& Formula::children() const {
  OPCQA_CHECK(kind_ == Kind::kAnd || kind_ == Kind::kOr);
  return children_;
}

const FormulaPtr& Formula::child() const {
  OPCQA_CHECK(kind_ == Kind::kNot || kind_ == Kind::kExists ||
              kind_ == Kind::kForall);
  return children_.front();
}

const std::vector<VarId>& Formula::quantified() const {
  OPCQA_CHECK(kind_ == Kind::kExists || kind_ == Kind::kForall);
  return quantified_;
}

FormulaPtr Formula::True() {
  return FormulaPtr(new Formula(Kind::kTrue));
}

FormulaPtr Formula::False() {
  return FormulaPtr(new Formula(Kind::kFalse));
}

FormulaPtr Formula::MakeAtom(Atom atom) {
  auto f = new Formula(Kind::kAtom);
  f->atom_ = std::move(atom);
  return FormulaPtr(f);
}

FormulaPtr Formula::Equals(Term lhs, Term rhs) {
  auto f = new Formula(Kind::kEquals);
  f->lhs_ = lhs;
  f->rhs_ = rhs;
  return FormulaPtr(f);
}

FormulaPtr Formula::Not(FormulaPtr child) {
  OPCQA_CHECK(child != nullptr);
  auto f = new Formula(Kind::kNot);
  f->children_.push_back(std::move(child));
  return FormulaPtr(f);
}

FormulaPtr Formula::And(std::vector<FormulaPtr> children) {
  OPCQA_CHECK(!children.empty());
  if (children.size() == 1) return children.front();
  auto f = new Formula(Kind::kAnd);
  f->children_ = std::move(children);
  return FormulaPtr(f);
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> children) {
  OPCQA_CHECK(!children.empty());
  if (children.size() == 1) return children.front();
  auto f = new Formula(Kind::kOr);
  f->children_ = std::move(children);
  return FormulaPtr(f);
}

FormulaPtr Formula::Implies(FormulaPtr premise, FormulaPtr conclusion) {
  return Or({Not(std::move(premise)), std::move(conclusion)});
}

FormulaPtr Formula::Exists(std::vector<VarId> vars, FormulaPtr child) {
  OPCQA_CHECK(child != nullptr);
  if (vars.empty()) return child;
  auto f = new Formula(Kind::kExists);
  f->quantified_ = std::move(vars);
  f->children_.push_back(std::move(child));
  return FormulaPtr(f);
}

FormulaPtr Formula::Forall(std::vector<VarId> vars, FormulaPtr child) {
  OPCQA_CHECK(child != nullptr);
  if (vars.empty()) return child;
  auto f = new Formula(Kind::kForall);
  f->quantified_ = std::move(vars);
  f->children_.push_back(std::move(child));
  return FormulaPtr(f);
}

FormulaPtr Formula::FromConjunction(const Conjunction& conjunction) {
  std::vector<FormulaPtr> parts;
  parts.reserve(conjunction.size());
  for (const Atom& atom : conjunction.atoms()) {
    parts.push_back(MakeAtom(atom));
  }
  if (parts.empty()) return True();
  return And(std::move(parts));
}

void Formula::CollectFreeVariables(std::vector<VarId>* bound,
                                   std::vector<VarId>* free) const {
  auto add_free = [&](VarId v) {
    if (std::find(bound->begin(), bound->end(), v) != bound->end()) return;
    if (std::find(free->begin(), free->end(), v) != free->end()) return;
    free->push_back(v);
  };
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kAtom:
      for (const Term& t : atom_.terms()) {
        if (t.is_var()) add_free(t.var());
      }
      return;
    case Kind::kEquals:
      if (lhs_.is_var()) add_free(lhs_.var());
      if (rhs_.is_var()) add_free(rhs_.var());
      return;
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr:
      for (const FormulaPtr& c : children_) {
        c->CollectFreeVariables(bound, free);
      }
      return;
    case Kind::kExists:
    case Kind::kForall: {
      size_t before = bound->size();
      bound->insert(bound->end(), quantified_.begin(), quantified_.end());
      children_.front()->CollectFreeVariables(bound, free);
      bound->resize(before);
      return;
    }
  }
}

std::vector<VarId> Formula::FreeVariables() const {
  std::vector<VarId> bound, free;
  CollectFreeVariables(&bound, &free);
  return free;
}

std::string Formula::ToString(const Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom_.ToString(schema);
    case Kind::kEquals:
      return lhs_.ToString() + " = " + rhs_.ToString();
    case Kind::kNot:
      return "not (" + children_.front()->ToString(schema) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const FormulaPtr& c : children_) {
        parts.push_back("(" + c->ToString(schema) + ")");
      }
      return Join(parts, kind_ == Kind::kAnd ? " & " : " | ");
    }
    case Kind::kExists:
    case Kind::kForall: {
      std::vector<std::string> vars;
      vars.reserve(quantified_.size());
      for (VarId v : quantified_) vars.push_back(VarName(v));
      return StrCat(kind_ == Kind::kExists ? "exists " : "forall ",
                    Join(vars, ","), " (",
                    children_.front()->ToString(schema), ")");
    }
  }
  return "?";
}

}  // namespace opcqa
