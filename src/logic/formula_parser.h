// Text syntax for first-order queries and formulas.
//
//   query   := Name '(' vars? ')' ':=' formula
//   formula := ('exists'|'forall') vars ('.'|':')? formula
//            | formula '->' formula            (right assoc, lowest prec)
//            | formula ('|' | 'or') formula
//            | formula ('&' | ',' | 'and') formula
//            | ('not' | '!') formula
//            | '(' formula ')' | 'true' | 'false'
//            | Atom | term '=' term | term '!=' term
//
// Variable scoping is explicit: the head variables of a query and the
// variables bound by quantifiers are variables; every other identifier is a
// constant. Example:
//
//   Q(x) := forall y (Pref(x,y) | x = y)        -- Example 7 of the paper
//   HasAdmin() := exists u Role(u, admin)        -- `admin` is a constant

#ifndef OPCQA_LOGIC_FORMULA_PARSER_H_
#define OPCQA_LOGIC_FORMULA_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "logic/query.h"
#include "util/status.h"

namespace opcqa {

/// Parses a named query definition like "Q(x,y) := R(x,z), S(z,y)".
Result<Query> ParseQuery(const Schema& schema, std::string_view text);

/// Parses a formula whose free variables are `free_vars` (names).
Result<FormulaPtr> ParseFormula(const Schema& schema, std::string_view text,
                                const std::vector<std::string>& free_vars);

}  // namespace opcqa

#endif  // OPCQA_LOGIC_FORMULA_PARSER_H_
