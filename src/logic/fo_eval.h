// Active-domain evaluation of first-order formulas.
//
// D ⊨ φ(ā) with quantifiers ranging over dom(D), matching the paper's query
// semantics Q(D) = { c̄ ∈ dom(D)^|x̄| : D ⊨ ϕ(c̄) }.

#ifndef OPCQA_LOGIC_FO_EVAL_H_
#define OPCQA_LOGIC_FO_EVAL_H_

#include "logic/formula.h"
#include "logic/homomorphism.h"
#include "relational/database.h"

namespace opcqa {

/// Evaluates `formula` on `db` under `assignment` (which must bind every
/// free variable of the formula). Quantified variables range over the
/// active domain of `db`.
bool EvalFormula(const Formula& formula, const Database& db,
                 const Assignment& assignment);

/// Evaluation against a precomputed domain (used when many evaluations run
/// against the same database).
bool EvalFormula(const Formula& formula, const Database& db,
                 const std::vector<ConstId>& domain,
                 const Assignment& assignment);

}  // namespace opcqa

#endif  // OPCQA_LOGIC_FO_EVAL_H_
