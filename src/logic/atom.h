// Atoms R(t1,...,tn) over terms, and conjunctions of atoms (viewed as sets
// of atoms / tableaux, as the paper does when talking about homomorphisms).

#ifndef OPCQA_LOGIC_ATOM_H_
#define OPCQA_LOGIC_ATOM_H_

#include <compare>
#include <set>
#include <string>
#include <vector>

#include "logic/term.h"
#include "relational/fact.h"
#include "relational/schema.h"

namespace opcqa {

class Atom {
 public:
  Atom() = default;
  Atom(PredId pred, std::vector<Term> terms)
      : pred_(pred), terms_(std::move(terms)) {}

  PredId pred() const { return pred_; }
  const std::vector<Term>& terms() const { return terms_; }
  size_t arity() const { return terms_.size(); }

  bool is_ground() const;
  /// Converts a ground atom to a fact; CHECK-fails when variables remain.
  Fact ToFact() const;

  /// Variables occurring in the atom, in order of first occurrence.
  void CollectVariables(std::vector<VarId>* out) const;
  /// Constants occurring in the atom.
  void CollectConstants(std::vector<ConstId>* out) const;

  auto operator<=>(const Atom&) const = default;

  std::string ToString(const Schema& schema) const;

 private:
  PredId pred_ = 0;
  std::vector<Term> terms_;
};

/// A conjunction of atoms (the tableau of a constraint body/head or of a
/// conjunctive query).
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  const std::vector<Atom>& atoms() const { return atoms_; }
  bool empty() const { return atoms_.empty(); }
  size_t size() const { return atoms_.size(); }
  void Add(Atom atom) { atoms_.push_back(std::move(atom)); }

  /// Distinct variables in order of first occurrence.
  std::vector<VarId> Variables() const;
  /// Distinct constants.
  std::vector<ConstId> Constants() const;

  auto operator<=>(const Conjunction&) const = default;

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace opcqa

#endif  // OPCQA_LOGIC_ATOM_H_
