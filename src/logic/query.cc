#include "logic/query.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

Query::Query(std::string name, std::vector<VarId> head, FormulaPtr body)
    : name_(std::move(name)), head_(std::move(head)), body_(std::move(body)) {
  OPCQA_CHECK(body_ != nullptr);
  for (size_t i = 0; i < head_.size(); ++i) {
    for (size_t j = i + 1; j < head_.size(); ++j) {
      OPCQA_CHECK_NE(head_[i], head_[j])
          << "duplicate head variable " << VarName(head_[i]);
    }
  }
  for (VarId v : body_->FreeVariables()) {
    OPCQA_CHECK(std::find(head_.begin(), head_.end(), v) != head_.end())
        << "free variable " << VarName(v) << " of the body is not in the head";
  }
  AnalyzeConjunctive();
}

void Query::AnalyzeConjunctive() {
  // Accept: atom | And(atoms) | Exists(vars, atom|And(atoms)).
  ConjunctiveView view;
  const Formula* f = body_.get();
  if (f->kind() == Formula::Kind::kExists) {
    view.existential = f->quantified();
    f = f->child().get();
  }
  auto add_atoms = [&](const Formula& g) -> bool {
    if (g.kind() == Formula::Kind::kAtom) {
      view.body.Add(g.atom());
      return true;
    }
    if (g.kind() == Formula::Kind::kAnd) {
      for (const FormulaPtr& c : g.children()) {
        if (c->kind() != Formula::Kind::kAtom) return false;
        view.body.Add(c->atom());
      }
      return true;
    }
    return false;
  };
  if (!add_atoms(*f)) return;
  // The homomorphism fast path reads head values off the match, so every
  // head variable must occur in the body.
  std::vector<VarId> body_vars = view.body.Variables();
  for (VarId v : head_) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end()) {
      return;
    }
  }
  conjunctive_ = std::move(view);
}

std::set<Tuple> Query::Evaluate(const Database& db) const {
  std::set<Tuple> answers;
  if (IsConjunctive()) {
    FindHomomorphisms(conjunctive_->body, db, Assignment(),
                      [&](const Assignment& h) {
                        Tuple t;
                        t.reserve(head_.size());
                        for (VarId v : head_) {
                          t.push_back(*h.Get(v));
                        }
                        answers.insert(std::move(t));
                        return true;
                      });
    return answers;
  }
  std::vector<ConstId> domain = db.ActiveDomain();
  // Enumerate assignments of head variables over the active domain.
  Tuple tuple(head_.size());
  std::vector<size_t> index(head_.size(), 0);
  if (head_.empty()) {
    // Boolean query: the single candidate answer is the empty tuple.
    // (Tuple{} spelled out: insert({}) would pick the initializer_list
    // overload and insert nothing.)
    if (EvalFormula(*body_, db, domain, Assignment())) {
      answers.insert(Tuple{});
    }
    return answers;
  }
  if (domain.empty()) return answers;
  for (;;) {
    Assignment env;
    for (size_t i = 0; i < head_.size(); ++i) {
      tuple[i] = domain[index[i]];
      env.Unbind(head_[i]);
      env.Bind(head_[i], tuple[i]);
    }
    if (EvalFormula(*body_, db, domain, env)) answers.insert(tuple);
    size_t i = head_.size();
    bool done = true;
    while (i > 0) {
      --i;
      if (++index[i] < domain.size()) {
        done = false;
        break;
      }
      index[i] = 0;
    }
    if (done) break;
  }
  return answers;
}

bool Query::Contains(const Database& db, const Tuple& tuple) const {
  OPCQA_CHECK_EQ(tuple.size(), head_.size());
  std::vector<ConstId> domain = db.ActiveDomain();
  // Answers range over dom(D): a tuple with foreign constants is not one.
  for (ConstId c : tuple) {
    if (!std::binary_search(domain.begin(), domain.end(), c)) return false;
  }
  Assignment env;
  for (size_t i = 0; i < head_.size(); ++i) {
    auto existing = env.Get(head_[i]);
    if (existing.has_value()) {
      // Repeated head variable must be matched by equal tuple constants.
      if (*existing != tuple[i]) return false;
    } else {
      env.Bind(head_[i], tuple[i]);
    }
  }
  if (IsConjunctive()) {
    return HasHomomorphism(conjunctive_->body, db, env);
  }
  return EvalFormula(*body_, db, domain, env);
}

std::string Query::ToString(const Schema& schema) const {
  std::vector<std::string> vars;
  vars.reserve(head_.size());
  for (VarId v : head_) vars.push_back(VarName(v));
  return StrCat(name_.empty() ? "Q" : name_, "(", Join(vars, ","),
                ") := ", body_->ToString(schema));
}

std::string TupleToString(const Tuple& tuple) {
  std::vector<std::string> parts;
  parts.reserve(tuple.size());
  for (ConstId c : tuple) parts.push_back(ConstName(c));
  return "(" + Join(parts, ",") + ")";
}

}  // namespace opcqa
