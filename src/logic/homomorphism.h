// Homomorphisms from conjunctions of atoms into databases.
//
// A homomorphism h maps the variables of a conjunction ϕ to constants (and
// is the identity on constants) such that h(ϕ) ⊆ D. Violations of
// constraints (Definition 2) are exactly such homomorphisms, so Assignment
// supports ordering/equality — violation sets are kept in std::set.

#ifndef OPCQA_LOGIC_HOMOMORPHISM_H_
#define OPCQA_LOGIC_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "logic/atom.h"
#include "relational/database.h"

namespace opcqa {

/// A (partial) assignment of constants to variables. Bindings are a flat
/// vector sorted by variable — constraint bodies bind a handful of
/// variables, where a linear scan beats a node-based map and keeps the
/// lexicographic (var, value) ordering of the former std::map.
class Assignment {
 public:
  Assignment() = default;

  /// Value bound to `var`, if any.
  std::optional<ConstId> Get(VarId var) const;
  /// Binds var := value; CHECK-fails when already bound to something else.
  void Bind(VarId var, ConstId value);
  /// Removes a binding (backtracking).
  void Unbind(VarId var);
  bool IsBound(VarId var) const { return Get(var).has_value(); }
  size_t size() const { return map_.size(); }

  /// Applies the assignment to a term; CHECK-fails on unbound variables.
  ConstId Apply(const Term& term) const;
  /// Applies to an atom producing a fact; CHECK-fails on unbound variables.
  Fact Apply(const Atom& atom) const;
  /// Image of a whole conjunction: h(ϕ) as a set of facts (deduplicated).
  std::vector<Fact> ApplyAll(const Conjunction& conjunction) const;

  /// True when `other` agrees with this assignment on all bound variables
  /// of this assignment (i.e., `other` extends it).
  bool ExtendedBy(const Assignment& other) const;

  auto operator<=>(const Assignment&) const = default;

  /// "{x->a, y->b}".
  std::string ToString() const;

  /// The bindings, sorted by variable.
  const std::vector<std::pair<VarId, ConstId>>& bindings() const {
    return map_;
  }

 private:
  std::vector<std::pair<VarId, ConstId>> map_;  // sorted by VarId
};

/// Enumerates every homomorphism from `conjunction` into `db` extending
/// `partial` (pass an empty Assignment for all homomorphisms). Invokes
/// `callback` for each; stops early when the callback returns false.
/// Returns the number of homomorphisms visited.
size_t FindHomomorphisms(
    const Conjunction& conjunction, const Database& db,
    const Assignment& partial,
    const std::function<bool(const Assignment&)>& callback);

/// True when at least one homomorphism exists.
bool HasHomomorphism(const Conjunction& conjunction, const Database& db,
                     const Assignment& partial);

/// Collects all homomorphisms (convenience for tests and small inputs).
std::vector<Assignment> AllHomomorphisms(const Conjunction& conjunction,
                                         const Database& db,
                                         const Assignment& partial);

}  // namespace opcqa

#endif  // OPCQA_LOGIC_HOMOMORPHISM_H_
