#include "logic/formula_parser.h"

#include <cctype>
#include <set>

#include "util/string_util.h"

namespace opcqa {

namespace {

enum class TokKind {
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kEquals,
  kNotEquals,
  kAnd,
  kOr,
  kNot,
  kArrow,
  kDefine,  // :=
  kDot,
  kColon,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        std::string word(text_.substr(start, pos_ - start));
        if (word == "and") {
          tokens.push_back({TokKind::kAnd, word});
        } else if (word == "or") {
          tokens.push_back({TokKind::kOr, word});
        } else if (word == "not") {
          tokens.push_back({TokKind::kNot, word});
        } else {
          tokens.push_back({TokKind::kIdent, word});
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back(
            {TokKind::kIdent, std::string(text_.substr(start, pos_ - start))});
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({TokKind::kLParen, "("});
          ++pos_;
          break;
        case ')':
          tokens.push_back({TokKind::kRParen, ")"});
          ++pos_;
          break;
        case ',':
          tokens.push_back({TokKind::kComma, ","});
          ++pos_;
          break;
        case '&':
          tokens.push_back({TokKind::kAnd, "&"});
          ++pos_;
          break;
        case '|':
          tokens.push_back({TokKind::kOr, "|"});
          ++pos_;
          break;
        case '=':
          tokens.push_back({TokKind::kEquals, "="});
          ++pos_;
          break;
        case '.':
          tokens.push_back({TokKind::kDot, "."});
          ++pos_;
          break;
        case '!':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokKind::kNotEquals, "!="});
            pos_ += 2;
          } else {
            tokens.push_back({TokKind::kNot, "!"});
            ++pos_;
          }
          break;
        case '-':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
            tokens.push_back({TokKind::kArrow, "->"});
            pos_ += 2;
          } else {
            return Status::InvalidArgument(
                StrCat("unexpected '-' at position ", pos_));
          }
          break;
        case ':':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokKind::kDefine, ":="});
            pos_ += 2;
          } else {
            tokens.push_back({TokKind::kColon, ":"});
            ++pos_;
          }
          break;
        default:
          return Status::InvalidArgument(
              StrCat("unexpected character '", std::string(1, c),
                     "' at position ", pos_));
      }
    }
    tokens.push_back({TokKind::kEnd, ""});
    return tokens;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// Recursive-descent parser. Precedence (low→high): -> , | , & , not.
class Parser {
 public:
  Parser(const Schema& schema, std::vector<Token> tokens,
         std::set<std::string> scope)
      : schema_(schema), tokens_(std::move(tokens)), scope_(std::move(scope)) {}

  Result<FormulaPtr> ParseToEnd() {
    Result<FormulaPtr> f = ParseFormula();
    if (!f.ok()) return f;
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument(
          StrCat("trailing input starting at '", Peek().text, "'"));
    }
    return f;
  }

  Result<FormulaPtr> ParseFormula() { return ParseImplication(); }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<FormulaPtr> ParseImplication() {
    Result<FormulaPtr> lhs = ParseDisjunction();
    if (!lhs.ok()) return lhs;
    if (Match(TokKind::kArrow)) {
      Result<FormulaPtr> rhs = ParseImplication();  // right associative
      if (!rhs.ok()) return rhs;
      return Formula::Implies(std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  Result<FormulaPtr> ParseDisjunction() {
    Result<FormulaPtr> first = ParseConjunction();
    if (!first.ok()) return first;
    std::vector<FormulaPtr> parts{std::move(first).value()};
    while (Match(TokKind::kOr)) {
      Result<FormulaPtr> next = ParseConjunction();
      if (!next.ok()) return next;
      parts.push_back(std::move(next).value());
    }
    return Formula::Or(std::move(parts));
  }

  Result<FormulaPtr> ParseConjunction() {
    Result<FormulaPtr> first = ParseUnary();
    if (!first.ok()) return first;
    std::vector<FormulaPtr> parts{std::move(first).value()};
    while (Peek().kind == TokKind::kAnd || Peek().kind == TokKind::kComma) {
      Advance();
      Result<FormulaPtr> next = ParseUnary();
      if (!next.ok()) return next;
      parts.push_back(std::move(next).value());
    }
    return Formula::And(std::move(parts));
  }

  Result<FormulaPtr> ParseUnary() {
    if (Match(TokKind::kNot)) {
      Result<FormulaPtr> child = ParseUnary();
      if (!child.ok()) return child;
      return Formula::Not(std::move(child).value());
    }
    if (Peek().kind == TokKind::kIdent &&
        (Peek().text == "exists" || Peek().text == "forall")) {
      return ParseQuantifier();
    }
    if (Match(TokKind::kLParen)) {
      Result<FormulaPtr> inner = ParseFormula();
      if (!inner.ok()) return inner;
      if (!Match(TokKind::kRParen)) {
        return Status::InvalidArgument("expected ')'");
      }
      return inner;
    }
    if (Peek().kind == TokKind::kIdent) {
      if (Peek().text == "true") {
        Advance();
        return Formula::True();
      }
      if (Peek().text == "false") {
        Advance();
        return Formula::False();
      }
      return ParseAtomOrEquality();
    }
    return Status::InvalidArgument(
        StrCat("unexpected token '", Peek().text, "'"));
  }

  Result<FormulaPtr> ParseQuantifier() {
    bool existential = Advance().text == "exists";
    std::vector<VarId> vars;
    std::vector<std::string> names;
    do {
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected variable after quantifier");
      }
      std::string name = Advance().text;
      vars.push_back(Var(name));
      names.push_back(name);
    } while (Match(TokKind::kComma));
    // Optional '.' or ':' between the variable list and the body.
    if (!Match(TokKind::kDot)) Match(TokKind::kColon);
    // The quantified names enter scope for the body only.
    std::vector<std::string> added;
    for (const std::string& name : names) {
      if (scope_.insert(name).second) added.push_back(name);
    }
    Result<FormulaPtr> body = ParseUnary();
    for (const std::string& name : added) scope_.erase(name);
    if (!body.ok()) return body;
    return existential ? Formula::Exists(std::move(vars),
                                         std::move(body).value())
                       : Formula::Forall(std::move(vars),
                                         std::move(body).value());
  }

  // Identifiers in scope are variables; identifiers that merely *look*
  // like variables (s..z convention) but are not declared are almost
  // always accidental free variables, so they are rejected instead of
  // being silently read as constants. Everything else is a constant.
  Result<Term> MakeTerm(const std::string& name) {
    if (scope_.count(name) > 0) return Term::MakeVar(name);
    bool variable_like = !name.empty() && name[0] >= 's' && name[0] <= 'z' &&
                         std::all_of(name.begin() + 1, name.end(),
                                     [](char c) {
                                       return std::isdigit(
                                                  static_cast<unsigned char>(
                                                      c)) ||
                                              c == '_';
                                     });
    if (variable_like) {
      return Status::InvalidArgument(
          StrCat("undeclared variable '", name,
                 "': declare it in the query head or quantify it"));
    }
    return Term::MakeConst(name);
  }

  Result<FormulaPtr> ParseAtomOrEquality() {
    std::string first = Advance().text;
    if (Peek().kind == TokKind::kLParen) {
      // Atom: Relation(term, ..., term)
      PredId pred = schema_.FindRelation(first);
      if (pred == Schema::kNotFound) {
        return Status::NotFound(StrCat("unknown relation: ", first));
      }
      Advance();  // consume '('
      std::vector<Term> terms;
      if (Peek().kind != TokKind::kRParen) {
        do {
          if (Peek().kind != TokKind::kIdent) {
            return Status::InvalidArgument(
                StrCat("expected term in atom ", first));
          }
          Result<Term> term = MakeTerm(Advance().text);
          if (!term.ok()) return term.status();
          terms.push_back(*term);
        } while (Match(TokKind::kComma));
      }
      if (!Match(TokKind::kRParen)) {
        return Status::InvalidArgument(StrCat("expected ')' in atom ", first));
      }
      if (terms.size() != schema_.Arity(pred)) {
        return Status::InvalidArgument(
            StrCat("arity mismatch for ", first, ": expected ",
                   schema_.Arity(pred), " got ", terms.size()));
      }
      return Formula::MakeAtom(Atom(pred, std::move(terms)));
    }
    // Equality / inequality: term (=|!=) term.
    Result<Term> lhs = MakeTerm(first);
    if (!lhs.ok()) return lhs.status();
    if (Match(TokKind::kEquals)) {
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected term after '='");
      }
      Result<Term> rhs = MakeTerm(Advance().text);
      if (!rhs.ok()) return rhs.status();
      return Formula::Equals(*lhs, *rhs);
    }
    if (Match(TokKind::kNotEquals)) {
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected term after '!='");
      }
      Result<Term> rhs = MakeTerm(Advance().text);
      if (!rhs.ok()) return rhs.status();
      return Formula::Not(Formula::Equals(*lhs, *rhs));
    }
    return Status::InvalidArgument(
        StrCat("expected '(', '=' or '!=' after '", first, "'"));
  }

  const Schema& schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::set<std::string> scope_;
};

}  // namespace

Result<FormulaPtr> ParseFormula(const Schema& schema, std::string_view text,
                                const std::vector<std::string>& free_vars) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  std::set<std::string> scope(free_vars.begin(), free_vars.end());
  Parser parser(schema, std::move(tokens).value(), std::move(scope));
  return parser.ParseToEnd();
}

Result<Query> ParseQuery(const Schema& schema, std::string_view text) {
  size_t define = text.find(":=");
  if (define == std::string_view::npos) {
    return Status::InvalidArgument("query must have the form Head := Body");
  }
  std::string_view head_text = TrimView(text.substr(0, define));
  std::string_view body_text = TrimView(text.substr(define + 2));
  size_t open = head_text.find('(');
  if (open == std::string_view::npos || head_text.back() != ')') {
    return Status::InvalidArgument(
        StrCat("malformed query head: ", head_text));
  }
  std::string name = Trim(head_text.substr(0, open));
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument(StrCat("invalid query name: ", name));
  }
  std::string_view vars_text =
      head_text.substr(open + 1, head_text.size() - open - 2);
  std::vector<std::string> var_names;
  std::vector<VarId> head_vars;
  for (const std::string& piece : SplitTopLevel(vars_text, ',')) {
    std::string trimmed = Trim(piece);
    if (trimmed.empty()) continue;
    if (!IsIdentifier(trimmed)) {
      return Status::InvalidArgument(
          StrCat("invalid head variable: ", trimmed));
    }
    var_names.push_back(trimmed);
    head_vars.push_back(Var(trimmed));
  }
  Result<FormulaPtr> body = ParseFormula(schema, body_text, var_names);
  if (!body.ok()) return body.status();
  FormulaPtr formula = std::move(body).value();
  for (VarId v : formula->FreeVariables()) {
    if (std::find(head_vars.begin(), head_vars.end(), v) == head_vars.end()) {
      return Status::InvalidArgument(
          StrCat("body variable ", VarName(v), " not declared in the head"));
    }
  }
  return Query(std::move(name), std::move(head_vars), std::move(formula));
}

}  // namespace opcqa
