#include "constraints/violation.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

size_t Violation::Hash() const {
  // Bindings are sorted by variable, so the order-dependent combine is a
  // deterministic value hash of the assignment.
  size_t seed = HashCombine(0, constraint_index);
  for (const auto& [var, value] : h.bindings()) {
    seed = HashCombine(seed, var);
    seed = HashCombine(seed, value);
  }
  return seed;
}

std::string Violation::ToString(const Schema& schema,
                                const ConstraintSet& constraints) const {
  const Constraint& c = constraints[constraint_index];
  std::string name =
      c.label().empty() ? StrCat("#", constraint_index) : c.label();
  std::vector<std::string> image;
  for (const Fact& fact : h.ApplyAll(c.body())) {
    image.push_back(fact.ToString(schema));
  }
  return StrCat("(", name, ", ", h.ToString(), " over {", Join(image, ", "),
                "})");
}

ViolationSet ComputeViolations(const Database& db,
                               const ConstraintSet& constraints) {
  ViolationSet violations;
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Constraint& c = constraints[i];
    FindHomomorphisms(c.body(), db, Assignment(), [&](const Assignment& h) {
      if (!SatisfiesConclusion(db, c, h)) {
        violations.insert(Violation{i, h});
      }
      return true;
    });
  }
  return violations;
}

bool IsViolation(const Database& db, const ConstraintSet& constraints,
                 const Violation& violation) {
  OPCQA_CHECK_LT(violation.constraint_index, constraints.size());
  const Constraint& c = constraints[violation.constraint_index];
  // h(body) ⊆ db?
  for (const Fact& fact : violation.h.ApplyAll(c.body())) {
    if (!db.Contains(fact)) return false;
  }
  return !SatisfiesConclusion(db, c, violation.h);
}

std::vector<Fact> BodyImage(const ConstraintSet& constraints,
                            const Violation& violation) {
  const Constraint& c = constraints[violation.constraint_index];
  return violation.h.ApplyAll(c.body());
}

void BodyImageIds(const ConstraintSet& constraints, const Violation& violation,
                  std::vector<FactId>* ids) {
  const Constraint& c = constraints[violation.constraint_index];
  FactStore& store = FactStore::Global();
  ids->clear();
  ConstId args[16];
  for (const Atom& atom : c.body().atoms()) {
    OPCQA_CHECK_LE(atom.arity(), sizeof(args) / sizeof(args[0]));
    for (size_t i = 0; i < atom.arity(); ++i) {
      args[i] = violation.h.Apply(atom.terms()[i]);
    }
    ids->push_back(store.Intern(atom.pred(), args, atom.arity()));
  }
  std::sort(ids->begin(), ids->end(),
            [&store](FactId a, FactId b) { return store.Less(a, b); });
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

bool BodyImageIntersects(const ConstraintSet& constraints,
                         const Violation& violation,
                         const std::vector<FactId>& facts) {
  const Constraint& c = constraints[violation.constraint_index];
  const FactStore& store = FactStore::Global();
  for (const Atom& atom : c.body().atoms()) {
    for (FactId id : facts) {
      FactView view = store.View(id);
      if (view.pred != atom.pred() || view.arity != atom.arity()) continue;
      bool equal = true;
      for (size_t i = 0; i < view.arity; ++i) {
        if (violation.h.Apply(atom.terms()[i]) != view.args[i]) {
          equal = false;
          break;
        }
      }
      if (equal) return true;
    }
  }
  return false;
}

}  // namespace opcqa
