#include "constraints/weak_acyclicity.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/string_util.h"

namespace opcqa {
namespace {

/// Body positions of each universally quantified variable of a TGD.
std::map<VarId, std::vector<Position>> BodyPositions(const Constraint& tgd) {
  std::map<VarId, std::vector<Position>> positions;
  for (const Atom& atom : tgd.body().atoms()) {
    for (size_t i = 0; i < atom.arity(); ++i) {
      const Term& term = atom.terms()[i];
      if (term.is_var()) {
        positions[term.var()].push_back(Position{atom.pred(), i});
      }
    }
  }
  return positions;
}

/// Tarjan-free SCC via Kosaraju (two DFS passes, iterative).
std::vector<size_t> StronglyConnectedComponents(
    size_t num_nodes, const std::vector<std::vector<size_t>>& adjacency) {
  std::vector<std::vector<size_t>> reverse(num_nodes);
  for (size_t u = 0; u < num_nodes; ++u) {
    for (size_t v : adjacency[u]) reverse[v].push_back(u);
  }
  // First pass: finish order.
  std::vector<bool> visited(num_nodes, false);
  std::vector<size_t> order;
  order.reserve(num_nodes);
  for (size_t start = 0; start < num_nodes; ++start) {
    if (visited[start]) continue;
    // Iterative DFS with an explicit edge-index stack.
    std::vector<std::pair<size_t, size_t>> stack = {{start, 0}};
    visited[start] = true;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < adjacency[node].size()) {
        size_t next = adjacency[node][edge++];
        if (!visited[next]) {
          visited[next] = true;
          stack.emplace_back(next, 0);
        }
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  // Second pass on the reverse graph in reverse finish order.
  std::vector<size_t> component(num_nodes, SIZE_MAX);
  size_t num_components = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (component[*it] != SIZE_MAX) continue;
    std::vector<size_t> stack = {*it};
    component[*it] = num_components;
    while (!stack.empty()) {
      size_t node = stack.back();
      stack.pop_back();
      for (size_t next : reverse[node]) {
        if (component[next] == SIZE_MAX) {
          component[next] = num_components;
          stack.push_back(next);
        }
      }
    }
    ++num_components;
  }
  return component;
}

}  // namespace

std::string PositionGraph::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(edges.size());
  for (const PositionEdge& edge : edges) {
    parts.push_back(StrCat(schema.RelationName(edge.from.pred), "[",
                           edge.from.index, "] -",
                           edge.special ? "*" : "", "-> ",
                           schema.RelationName(edge.to.pred), "[",
                           edge.to.index, "]"));
  }
  return Join(parts, "\n");
}

PositionGraph BuildPositionGraph(const Schema& schema,
                                 const ConstraintSet& constraints) {
  (void)schema;
  std::set<PositionEdge> edges;
  for (const Constraint& constraint : constraints) {
    if (!constraint.is_tgd()) continue;
    std::map<VarId, std::vector<Position>> body = BodyPositions(constraint);
    std::set<VarId> existential(constraint.existential().begin(),
                                constraint.existential().end());
    // Head positions of existential variables, per head atom.
    std::vector<Position> existential_positions;
    for (const Atom& atom : constraint.head().atoms()) {
      for (size_t i = 0; i < atom.arity(); ++i) {
        const Term& term = atom.terms()[i];
        if (term.is_var() && existential.count(term.var())) {
          existential_positions.push_back(Position{atom.pred(), i});
        }
      }
    }
    for (const auto& [var, from_positions] : body) {
      if (existential.count(var)) continue;  // body vars are universal
      bool propagated = false;
      for (const Atom& atom : constraint.head().atoms()) {
        for (size_t i = 0; i < atom.arity(); ++i) {
          const Term& term = atom.terms()[i];
          if (term.is_var() && term.var() == var) {
            propagated = true;
            for (const Position& from : from_positions) {
              edges.insert(
                  PositionEdge{from, Position{atom.pred(), i}, false});
            }
          }
        }
      }
      // Special edges from every body position of every propagated
      // universal variable to every existential head position.
      if (propagated) {
        for (const Position& from : from_positions) {
          for (const Position& to : existential_positions) {
            edges.insert(PositionEdge{from, to, true});
          }
        }
      }
    }
  }
  PositionGraph graph;
  graph.edges.assign(edges.begin(), edges.end());
  return graph;
}

bool IsWeaklyAcyclic(const Schema& schema,
                     const ConstraintSet& constraints) {
  PositionGraph graph = BuildPositionGraph(schema, constraints);
  // Dense node ids for the positions that occur in edges.
  std::map<Position, size_t> node_of;
  auto node_id = [&](const Position& position) {
    auto [it, inserted] = node_of.emplace(position, node_of.size());
    return it->second;
  };
  std::vector<std::pair<std::pair<size_t, size_t>, bool>> dense;
  dense.reserve(graph.edges.size());
  for (const PositionEdge& edge : graph.edges) {
    dense.push_back({{node_id(edge.from), node_id(edge.to)}, edge.special});
  }
  std::vector<std::vector<size_t>> adjacency(node_of.size());
  for (const auto& [pair, special] : dense) {
    adjacency[pair.first].push_back(pair.second);
  }
  std::vector<size_t> component =
      StronglyConnectedComponents(node_of.size(), adjacency);
  // A special edge inside one SCC lies on a cycle through itself.
  for (const auto& [pair, special] : dense) {
    if (special && component[pair.first] == component[pair.second]) {
      return false;
    }
  }
  return true;
}

}  // namespace opcqa
