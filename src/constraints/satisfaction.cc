#include "constraints/satisfaction.h"

namespace opcqa {

bool SatisfiesConclusion(const Database& db, const Constraint& constraint,
                         const Assignment& h) {
  switch (constraint.kind()) {
    case Constraint::Kind::kDc:
      // A body match of a DC is always a violation.
      return false;
    case Constraint::Kind::kEgd:
      return *h.Get(constraint.eq_lhs()) == *h.Get(constraint.eq_rhs());
    case Constraint::Kind::kTgd:
      // Needs an extension of h matching the head in db.
      return HasHomomorphism(constraint.head(), db, h);
  }
  return false;
}

bool Satisfies(const Database& db, const Constraint& constraint) {
  bool ok = true;
  FindHomomorphisms(constraint.body(), db, Assignment(),
                    [&](const Assignment& h) {
                      if (!SatisfiesConclusion(db, constraint, h)) {
                        ok = false;
                        return false;  // stop early
                      }
                      return true;
                    });
  return ok;
}

bool Satisfies(const Database& db, const ConstraintSet& constraints) {
  for (const Constraint& c : constraints) {
    if (!Satisfies(db, c)) return false;
  }
  return true;
}

}  // namespace opcqa
