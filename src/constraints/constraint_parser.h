// Text syntax for constraints (rule-based, as in the paper's examples):
//
//   TGD:  R(x,y) -> exists z: S(x,y,z)         (multi-atom heads allowed)
//   EGD:  R(x,y), R(x,z) -> y = z
//   DC:   Pref(x,y), Pref(y,x) -> false        (or:  !(Pref(x,y), Pref(y,x)))
//
// Universal quantification is implicit (as in the paper). Variable naming
// convention: an identifier is a VARIABLE iff its first character is in
// 's'..'z' and the rest are digits or '_' (x, y, z2, u, w_1, ...), or it is
// declared in a TGD's `exists` list. Every other identifier or number is a
// CONSTANT (a, b, admin, 42, ...).
//
// A constraint *set* is newline- or ';'-separated; '#' starts a comment; an
// optional "label:" prefix names a constraint.

#ifndef OPCQA_CONSTRAINTS_CONSTRAINT_PARSER_H_
#define OPCQA_CONSTRAINTS_CONSTRAINT_PARSER_H_

#include <string_view>

#include "constraints/constraint.h"
#include "util/status.h"

namespace opcqa {

/// Parses one constraint.
Result<Constraint> ParseConstraint(const Schema& schema,
                                   std::string_view text);

/// Parses a whole constraint set.
Result<ConstraintSet> ParseConstraints(const Schema& schema,
                                       std::string_view text);

/// The variable-naming convention used by the constraint syntax.
bool LooksLikeVariable(std::string_view name);

}  // namespace opcqa

#endif  // OPCQA_CONSTRAINTS_CONSTRAINT_PARSER_H_
