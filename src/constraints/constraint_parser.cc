#include "constraints/constraint_parser.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "util/string_util.h"

namespace opcqa {

bool LooksLikeVariable(std::string_view name) {
  if (name.empty()) return false;
  char first = name[0];
  if (first < 's' || first > 'z') return false;
  for (char c : name.substr(1)) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

namespace {

Term MakeConstraintTerm(std::string_view token,
                        const std::set<std::string>& declared_vars) {
  std::string name(token);
  if (declared_vars.count(name) > 0 || LooksLikeVariable(name)) {
    return Term::MakeVar(name);
  }
  return Term::MakeConst(name);
}

Result<Atom> ParseConstraintAtom(const Schema& schema, std::string_view text,
                                 const std::set<std::string>& declared_vars) {
  std::string_view trimmed = TrimView(text);
  size_t open = trimmed.find('(');
  if (open == std::string_view::npos || trimmed.empty() ||
      trimmed.back() != ')') {
    return Status::InvalidArgument(StrCat("malformed atom: ", text));
  }
  std::string_view name = TrimView(trimmed.substr(0, open));
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument(StrCat("invalid relation name: ", name));
  }
  PredId pred = schema.FindRelation(name);
  if (pred == Schema::kNotFound) {
    return Status::NotFound(StrCat("unknown relation: ", name));
  }
  std::string_view args = trimmed.substr(open + 1, trimmed.size() - open - 2);
  std::vector<Term> terms;
  for (const std::string& piece : SplitTopLevel(args, ',')) {
    std::string_view token = TrimView(piece);
    if (token.empty()) {
      return Status::InvalidArgument(StrCat("empty term in atom: ", text));
    }
    bool numeric = std::all_of(token.begin(), token.end(), [](char c) {
      return std::isdigit(static_cast<unsigned char>(c));
    });
    if (!IsIdentifier(token) && !numeric) {
      return Status::InvalidArgument(
          StrCat("invalid term '", token, "' in atom: ", text));
    }
    terms.push_back(MakeConstraintTerm(token, declared_vars));
  }
  if (terms.size() != schema.Arity(pred)) {
    return Status::InvalidArgument(
        StrCat("arity mismatch for ", name, ": expected ", schema.Arity(pred),
               " got ", terms.size()));
  }
  return Atom(pred, std::move(terms));
}

Result<Conjunction> ParseConjunctionOfAtoms(
    const Schema& schema, std::string_view text,
    const std::set<std::string>& declared_vars) {
  Conjunction conj;
  for (const std::string& piece : SplitTopLevel(text, ',')) {
    if (TrimView(piece).empty()) {
      return Status::InvalidArgument(
          StrCat("empty conjunct in: ", text));
    }
    Result<Atom> atom = ParseConstraintAtom(schema, piece, declared_vars);
    if (!atom.ok()) return atom.status();
    conj.Add(std::move(atom).value());
  }
  if (conj.empty()) {
    return Status::InvalidArgument("empty conjunction");
  }
  return conj;
}

}  // namespace

Result<Constraint> ParseConstraint(const Schema& schema,
                                   std::string_view text) {
  std::string_view trimmed = TrimView(text);
  // Optional "label:" prefix (label must not contain '(' or '-').
  std::string label;
  size_t colon = trimmed.find(':');
  if (colon != std::string_view::npos) {
    std::string_view prefix = TrimView(trimmed.substr(0, colon));
    size_t paren = trimmed.find('(');
    bool is_label = IsIdentifier(prefix) &&
                    (paren == std::string_view::npos || colon < paren) &&
                    // Don't swallow "exists z:" (no '->' before the colon).
                    trimmed.substr(0, colon).find("->") ==
                        std::string_view::npos;
    if (is_label) {
      label = std::string(prefix);
      trimmed = TrimView(trimmed.substr(colon + 1));
    }
  }
  // DC alternative form: !( body )
  if (!trimmed.empty() && trimmed[0] == '!') {
    std::string_view inner = TrimView(trimmed.substr(1));
    if (inner.size() < 2 || inner.front() != '(' || inner.back() != ')') {
      return Status::InvalidArgument(
          StrCat("malformed denial constraint: ", text));
    }
    Result<Conjunction> body = ParseConjunctionOfAtoms(
        schema, inner.substr(1, inner.size() - 2), {});
    if (!body.ok()) return body.status();
    return Constraint::Dc(std::move(body).value(), std::move(label));
  }
  size_t arrow = trimmed.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument(
        StrCat("constraint must contain '->' (or start with '!'): ", text));
  }
  std::string_view body_text = TrimView(trimmed.substr(0, arrow));
  std::string_view head_text = TrimView(trimmed.substr(arrow + 2));
  Result<Conjunction> body = ParseConjunctionOfAtoms(schema, body_text, {});
  if (!body.ok()) return body.status();

  if (head_text == "false" || head_text == "FALSE" || head_text == "bot") {
    return Constraint::Dc(std::move(body).value(), std::move(label));
  }

  // EGD: "x = y" (no parentheses in the head).
  if (head_text.find('(') == std::string_view::npos &&
      head_text.find('=') != std::string_view::npos) {
    std::vector<std::string> sides = Split(std::string(head_text), '=');
    if (sides.size() != 2) {
      return Status::InvalidArgument(
          StrCat("malformed EGD head: ", head_text));
    }
    std::string lhs = Trim(sides[0]);
    std::string rhs = Trim(sides[1]);
    if (!LooksLikeVariable(lhs) || !LooksLikeVariable(rhs)) {
      return Status::InvalidArgument(StrCat(
          "EGD head must equate two variables (s..z names): ", head_text));
    }
    Conjunction b = std::move(body).value();
    std::vector<VarId> body_vars = b.Variables();
    VarId l = Var(lhs), r = Var(rhs);
    for (VarId v : {l, r}) {
      if (std::find(body_vars.begin(), body_vars.end(), v) ==
          body_vars.end()) {
        return Status::InvalidArgument(
            StrCat("EGD equality variable not in body: ", VarName(v)));
      }
    }
    return Constraint::Egd(std::move(b), l, r, std::move(label));
  }

  // TGD: optional "exists z1,z2[:.]" prefix, then a conjunction of atoms.
  std::set<std::string> declared;
  std::vector<VarId> existential;
  if (head_text.substr(0, 6) == "exists") {
    std::string_view rest = TrimView(head_text.substr(6));
    // Variables up to ':' or '.' or the first '('.
    size_t stop = rest.find_first_of(":.");
    size_t paren = rest.find('(');
    if (stop == std::string_view::npos || (paren != std::string_view::npos &&
                                           paren < stop)) {
      // No separator: variable list ends where the first atom begins; find
      // the last comma before '('... simpler: require a separator unless the
      // variable list is a single token followed by whitespace.
      size_t space = rest.find_first_of(" \t");
      if (space == std::string_view::npos || (paren != std::string_view::npos
                                              && space > paren)) {
        return Status::InvalidArgument(
            StrCat("malformed exists prefix (use 'exists z:'): ", head_text));
      }
      stop = space;
    }
    for (const std::string& piece :
         Split(std::string(TrimView(rest.substr(0, stop))), ',')) {
      std::string name = Trim(piece);
      if (!IsIdentifier(name)) {
        return Status::InvalidArgument(
            StrCat("invalid existential variable: '", name, "'"));
      }
      declared.insert(name);
      existential.push_back(Var(name));
    }
    head_text = TrimView(rest.substr(stop + 1));
  }
  Result<Conjunction> head =
      ParseConjunctionOfAtoms(schema, head_text, declared);
  if (!head.ok()) return head.status();
  // Existential variables must not occur in the body (checked by Tgd());
  // surface that as a Status rather than a crash for parser users.
  Conjunction b = std::move(body).value();
  std::vector<VarId> body_vars = b.Variables();
  for (VarId v : existential) {
    if (std::find(body_vars.begin(), body_vars.end(), v) != body_vars.end()) {
      return Status::InvalidArgument(
          StrCat("existential variable ", VarName(v), " occurs in the body"));
    }
  }
  // Head variables that are neither existential nor in the body are illegal.
  for (VarId v : head->Variables()) {
    bool is_exist =
        std::find(existential.begin(), existential.end(), v) !=
        existential.end();
    bool in_body =
        std::find(body_vars.begin(), body_vars.end(), v) != body_vars.end();
    if (!is_exist && !in_body) {
      return Status::InvalidArgument(StrCat(
          "head variable ", VarName(v),
          " is neither in the body nor existentially quantified"));
    }
  }
  return Constraint::Tgd(std::move(b), std::move(head).value(),
                         std::move(existential), std::move(label));
}

Result<ConstraintSet> ParseConstraints(const Schema& schema,
                                       std::string_view text) {
  ConstraintSet constraints;
  std::string cleaned;
  for (const std::string& line : Split(text, '\n')) {
    size_t hash = line.find('#');
    cleaned += hash == std::string::npos ? line : line.substr(0, hash);
    cleaned += '\n';
  }
  // Split on ';' and newlines.
  std::string normalized;
  for (char c : cleaned) normalized += (c == ';') ? '\n' : c;
  for (const std::string& line : Split(normalized, '\n')) {
    if (TrimView(line).empty()) continue;
    Result<Constraint> c = ParseConstraint(schema, line);
    if (!c.ok()) return c.status();
    constraints.push_back(std::move(c).value());
  }
  return constraints;
}

}  // namespace opcqa
