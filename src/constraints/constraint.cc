#include "constraints/constraint.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace opcqa {

Constraint Constraint::Tgd(Conjunction body, Conjunction head,
                           std::vector<VarId> existential, std::string label) {
  OPCQA_CHECK(!body.empty()) << "TGD with empty body";
  OPCQA_CHECK(!head.empty()) << "TGD with empty head";
  Constraint c(Kind::kTgd, std::move(body), std::move(label));
  c.head_ = std::move(head);
  c.existential_ = std::move(existential);
  std::vector<VarId> body_vars = c.body_.Variables();
  for (VarId v : c.existential_) {
    OPCQA_CHECK(std::find(body_vars.begin(), body_vars.end(), v) ==
                body_vars.end())
        << "existential variable " << VarName(v) << " also occurs in the body";
  }
  for (VarId v : c.head_.Variables()) {
    bool in_body =
        std::find(body_vars.begin(), body_vars.end(), v) != body_vars.end();
    bool is_exist = std::find(c.existential_.begin(), c.existential_.end(),
                              v) != c.existential_.end();
    OPCQA_CHECK(in_body || is_exist)
        << "head variable " << VarName(v) << " is neither universal nor "
        << "existential";
  }
  return c;
}

Constraint Constraint::Egd(Conjunction body, VarId lhs, VarId rhs,
                           std::string label) {
  OPCQA_CHECK(!body.empty()) << "EGD with empty body";
  Constraint c(Kind::kEgd, std::move(body), std::move(label));
  std::vector<VarId> body_vars = c.body_.Variables();
  for (VarId v : {lhs, rhs}) {
    OPCQA_CHECK(std::find(body_vars.begin(), body_vars.end(), v) !=
                body_vars.end())
        << "EGD equality variable " << VarName(v) << " not in the body";
  }
  c.eq_lhs_ = lhs;
  c.eq_rhs_ = rhs;
  return c;
}

Constraint Constraint::Dc(Conjunction body, std::string label) {
  OPCQA_CHECK(!body.empty()) << "DC with empty body";
  return Constraint(Kind::kDc, std::move(body), std::move(label));
}

const Conjunction& Constraint::head() const {
  OPCQA_CHECK(is_tgd());
  return head_;
}

const std::vector<VarId>& Constraint::existential() const {
  OPCQA_CHECK(is_tgd());
  return existential_;
}

VarId Constraint::eq_lhs() const {
  OPCQA_CHECK(is_egd());
  return eq_lhs_;
}

VarId Constraint::eq_rhs() const {
  OPCQA_CHECK(is_egd());
  return eq_rhs_;
}

std::vector<ConstId> Constraint::Constants() const {
  std::vector<ConstId> constants = body_.Constants();
  if (is_tgd()) {
    for (ConstId c : head_.Constants()) {
      if (std::find(constants.begin(), constants.end(), c) ==
          constants.end()) {
        constants.push_back(c);
      }
    }
  }
  return constants;
}

std::string Constraint::ToString(const Schema& schema) const {
  std::string out = body_.ToString(schema);
  switch (kind_) {
    case Kind::kDc:
      out += " -> false";
      break;
    case Kind::kEgd:
      out += StrCat(" -> ", VarName(eq_lhs_), " = ", VarName(eq_rhs_));
      break;
    case Kind::kTgd: {
      out += " -> ";
      if (!existential_.empty()) {
        std::vector<std::string> names;
        names.reserve(existential_.size());
        for (VarId v : existential_) names.push_back(VarName(v));
        out += StrCat("exists ", Join(names, ","), ": ");
      }
      out += head_.ToString(schema);
      break;
    }
  }
  if (!label_.empty()) out = StrCat("[", label_, "] ", out);
  return out;
}

std::vector<ConstId> ConstantsOf(const ConstraintSet& constraints) {
  std::vector<ConstId> all;
  for (const Constraint& c : constraints) {
    for (ConstId id : c.Constants()) {
      if (std::find(all.begin(), all.end(), id) == all.end()) {
        all.push_back(id);
      }
    }
  }
  return all;
}

bool IsDenialOnly(const ConstraintSet& constraints) {
  return std::none_of(constraints.begin(), constraints.end(),
                      [](const Constraint& c) { return c.is_tgd(); });
}

}  // namespace opcqa
