// Database constraints: tuple-generating dependencies (TGDs),
// equality-generating dependencies (EGDs) and denial constraints (DCs),
// exactly the three classes of the paper (Section 2).
//
// All three are viewed uniformly as κ = ϕ(x̄) → ψ where ϕ is a non-empty
// conjunction of atoms; ψ is ∃z̄ head-conjunction (TGD), x_i = x_j (EGD) or
// ⊥ (DC).

#ifndef OPCQA_CONSTRAINTS_CONSTRAINT_H_
#define OPCQA_CONSTRAINTS_CONSTRAINT_H_

#include <string>
#include <vector>

#include "logic/atom.h"

namespace opcqa {

class Constraint {
 public:
  enum class Kind { kTgd, kEgd, kDc };

  /// ϕ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄). `existential` lists z̄; the remaining head
  /// variables must occur in the body. CHECK-fails on malformed input.
  static Constraint Tgd(Conjunction body, Conjunction head,
                        std::vector<VarId> existential,
                        std::string label = "");

  /// ϕ(x̄) → lhs = rhs with lhs, rhs variables of the body.
  static Constraint Egd(Conjunction body, VarId lhs, VarId rhs,
                        std::string label = "");

  /// ¬ϕ(x̄), i.e. ϕ(x̄) → ⊥.
  static Constraint Dc(Conjunction body, std::string label = "");

  Kind kind() const { return kind_; }
  bool is_tgd() const { return kind_ == Kind::kTgd; }
  bool is_egd() const { return kind_ == Kind::kEgd; }
  bool is_dc() const { return kind_ == Kind::kDc; }

  const Conjunction& body() const { return body_; }
  /// TGD only.
  const Conjunction& head() const;
  const std::vector<VarId>& existential() const;
  /// EGD only.
  VarId eq_lhs() const;
  VarId eq_rhs() const;

  const std::string& label() const { return label_; }

  /// All constants mentioned by the constraint (contribute to B(D,Σ)).
  std::vector<ConstId> Constants() const;

  std::string ToString(const Schema& schema) const;

 private:
  Constraint(Kind kind, Conjunction body, std::string label)
      : kind_(kind), body_(std::move(body)), label_(std::move(label)) {}

  Kind kind_;
  Conjunction body_;
  Conjunction head_;                  // TGD
  std::vector<VarId> existential_;    // TGD
  VarId eq_lhs_ = 0, eq_rhs_ = 0;     // EGD
  std::string label_;
};

/// A set of constraints Σ. Order is preserved; violations refer to
/// constraints by index.
using ConstraintSet = std::vector<Constraint>;

/// All constants occurring anywhere in Σ.
std::vector<ConstId> ConstantsOf(const ConstraintSet& constraints);

/// True when no constraint is a TGD (deletion-only repairing suffices;
/// Proposition 8 territory).
bool IsDenialOnly(const ConstraintSet& constraints);

}  // namespace opcqa

#endif  // OPCQA_CONSTRAINTS_CONSTRAINT_H_
