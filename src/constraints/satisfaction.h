// Constraint satisfaction D ⊨ κ via homomorphisms (Section 2 of the paper).

#ifndef OPCQA_CONSTRAINTS_SATISFACTION_H_
#define OPCQA_CONSTRAINTS_SATISFACTION_H_

#include "constraints/constraint.h"
#include "logic/homomorphism.h"
#include "relational/database.h"

namespace opcqa {

/// True when the body match `h` satisfies the conclusion of `constraint` in
/// `db` (i.e. (constraint, h) is *not* a violation).
bool SatisfiesConclusion(const Database& db, const Constraint& constraint,
                         const Assignment& h);

/// D ⊨ κ.
bool Satisfies(const Database& db, const Constraint& constraint);

/// D ⊨ Σ.
bool Satisfies(const Database& db, const ConstraintSet& constraints);

}  // namespace opcqa

#endif  // OPCQA_CONSTRAINTS_SATISFACTION_H_
