// Weak acyclicity of TGD sets — the standard termination criterion for the
// chase (Fagin, Kolaitis, Miller, Popa: "Data exchange: semantics and query
// answering"), used by the null-chase repair construction (the "Null
// Values" direction of Section 6).
//
// The dependency (position) graph has one node per position (R, i). For
// every TGD σ, every universally quantified variable x occurring in a body
// position (R, i) that is propagated to a head position (S, j) adds a
// regular edge (R,i) → (S,j); every existentially quantified variable in a
// head position (S, j) adds a *special* edge (R,i) → (S,j) from every body
// position of every propagated variable. Σ is weakly acyclic iff no cycle
// goes through a special edge; the chase then terminates in polynomially
// many steps.

#ifndef OPCQA_CONSTRAINTS_WEAK_ACYCLICITY_H_
#define OPCQA_CONSTRAINTS_WEAK_ACYCLICITY_H_

#include <string>
#include <vector>

#include "constraints/constraint.h"

namespace opcqa {

/// A position (R, i): attribute i of relation R.
struct Position {
  PredId pred;
  size_t index;

  auto operator<=>(const Position&) const = default;
};

struct PositionEdge {
  Position from;
  Position to;
  bool special;  // target position holds an existential variable

  auto operator<=>(const PositionEdge&) const = default;
};

/// The dependency graph of the TGDs in Σ (EGDs/DCs contribute no edges).
struct PositionGraph {
  std::vector<PositionEdge> edges;  // deduplicated, sorted

  std::string ToString(const Schema& schema) const;
};

/// Builds the dependency graph of Σ.
PositionGraph BuildPositionGraph(const Schema& schema,
                                 const ConstraintSet& constraints);

/// True iff no cycle of the dependency graph contains a special edge
/// (checked via strongly connected components).
bool IsWeaklyAcyclic(const Schema& schema, const ConstraintSet& constraints);

}  // namespace opcqa

#endif  // OPCQA_CONSTRAINTS_WEAK_ACYCLICITY_H_
