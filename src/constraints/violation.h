// Constraint violations (Definition 2): a D-violation of κ = ϕ → ψ is a
// homomorphism h from ϕ into D such that D ̸⊨ h(κ). V(D,Σ) collects pairs
// (κ, h); requirement req2 of the framework tracks violation identity
// across the databases of a repairing sequence, so Violation is ordered.

#ifndef OPCQA_CONSTRAINTS_VIOLATION_H_
#define OPCQA_CONSTRAINTS_VIOLATION_H_

#include <compare>
#include <set>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "constraints/satisfaction.h"

namespace opcqa {

struct Violation {
  /// Index of the violated constraint within its ConstraintSet.
  size_t constraint_index;
  /// The body homomorphism witnessing the violation.
  Assignment h;

  auto operator<=>(const Violation&) const = default;

  /// Stable value hash over (constraint_index, h) — the per-element hash
  /// behind the incrementally-maintained eliminated-set fingerprint of
  /// RepairingState (repair/memo.h keys transposition-table entries on it).
  size_t Hash() const;

  std::string ToString(const Schema& schema,
                       const ConstraintSet& constraints) const;
};

using ViolationSet = std::set<Violation>;

/// V(D,Σ): all violations of all constraints.
ViolationSet ComputeViolations(const Database& db,
                               const ConstraintSet& constraints);

/// True when (constraints[v.constraint_index], v.h) is a violation of `db`
/// — i.e. h(body) ⊆ db and the conclusion fails. Used to re-check old
/// violations against later databases (req2) without recomputing V.
bool IsViolation(const Database& db, const ConstraintSet& constraints,
                 const Violation& violation);

/// The facts h(ϕ) of the violation's body image in sorted order (the
/// candidate deletion pool of Proposition 1).
std::vector<Fact> BodyImage(const ConstraintSet& constraints,
                            const Violation& violation);

/// h(ϕ) as sorted, deduplicated interned ids (the id-level BodyImage;
/// `ids` is clear()ed and reused to keep the enumeration hot path
/// allocation-free).
void BodyImageIds(const ConstraintSet& constraints, const Violation& violation,
                  std::vector<FactId>* ids);

/// True when h(ϕ) intersects `facts` — an id-level check that never
/// materializes the image. Deleting facts from a database kills exactly the
/// EGD/DC violations whose image they intersect (bodies are monotone and
/// their conclusions ignore the database), which lets repairing states
/// maintain V(D,Σ) incrementally under deletions.
bool BodyImageIntersects(const ConstraintSet& constraints,
                         const Violation& violation,
                         const std::vector<FactId>& facts);

}  // namespace opcqa

#endif  // OPCQA_CONSTRAINTS_VIOLATION_H_
