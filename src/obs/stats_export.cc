#include "obs/stats_export.h"

namespace opcqa {
namespace obs {

void ExportMemoStats(const MemoStats& stats, MetricsSnapshot* out) {
  auto& c = out->counters;
  c["cache.hits"] = stats.hits;
  c["cache.misses"] = stats.misses;
  c["cache.collisions"] = stats.collisions;
  c["cache.inserts"] = stats.inserts;
  c["cache.rejected_full"] = stats.rejected_full;
  c["cache.evictions"] = stats.evictions;
  c["cache.admission_deferred"] = stats.admission_deferred;
  auto& g = out->gauges;
  g["cache.entries"] = static_cast<int64_t>(stats.entries);
  g["cache.bytes"] = static_cast<int64_t>(stats.bytes);
  g["cache.payload_bytes"] = static_cast<int64_t>(stats.payload_bytes);
  g["cache.full_payload_bytes"] =
      static_cast<int64_t>(stats.full_payload_bytes);
}

void ExportDiskTierStats(const DiskTierStats& stats, MetricsSnapshot* out) {
  auto& c = out->counters;
  c["disk.spills"] = stats.spills;
  c["disk.spill_bytes"] = stats.spill_bytes;
  c["disk.restores"] = stats.restores;
  c["disk.restore_bytes"] = stats.restore_bytes;
  c["disk.rejected_snapshots"] = stats.rejected_snapshots;
  c["disk.failed_spills"] = stats.failed_spills;
  c["disk.quarantined"] = stats.quarantined;
  c["disk.put_retries"] = stats.put_retries;
  c["disk.swept_temps"] = stats.swept_temps;
  c["disk.breaker_trips"] = stats.breaker_trips;
  c["disk.breaker_skips"] = stats.breaker_skips;
  c["disk.delta_appends"] = stats.delta_appends;
  c["disk.compactions"] = stats.compactions;
  c["disk.compressed_bytes"] = stats.compressed_bytes;
  c["disk.promotions"] = stats.promotions;
  c["disk.demotions"] = stats.demotions;
}

void ExportPlannerStats(const planner::PlannerStats& stats,
                        MetricsSnapshot* out) {
  auto& c = out->counters;
  c["planner.rewrite_plans"] = stats.rewrite_plans;
  c["planner.walk_plans"] = stats.walk_plans;
  c["planner.plan_cache_hits"] = stats.plan_cache_hits;
  c["planner.plan_cache_misses"] = stats.plan_cache_misses;
  c["planner.invalidations"] = stats.invalidations;
}

void ExportServerStats(const server::ServerStats& stats, MetricsSnapshot* out) {
  auto& c = out->counters;
  c["server.submitted"] = stats.submitted;
  c["server.completed"] = stats.completed;
  c["server.rejected_admission"] = stats.rejected_admission;
  c["server.errors"] = stats.errors;
  c["server.shed"] = stats.shed;
  c["server.timed_out"] = stats.timed_out;
  c["server.failed"] = stats.failed;
  c["server.panics"] = stats.panics;
  c["server.batches"] = stats.batches;
  c["server.batched_requests"] = stats.batched_requests;
  c["server.walks"] = stats.walks;
  c["server.replays"] = stats.replays;
  c["server.rewriting_fast_path"] = stats.rewriting_fast_path;
  c["server.topk_searches"] = stats.topk_searches;
  c["server.mutations"] = stats.mutations;
  c["server.pressure_bypasses"] = stats.pressure_bypasses;
  c["server.deadline_truncations"] = stats.deadline_truncations;
  out->gauges["server.tenants"] = static_cast<int64_t>(stats.tenants);
  ExportMemoStats(stats.cache, out);
  ExportDiskTierStats(stats.disk, out);
  ExportPlannerStats(stats.planner, out);
}

}  // namespace obs
}  // namespace opcqa
