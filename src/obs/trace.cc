// Empty translation unit unless OPCQA_TRACING is defined — see
// obs/trace.h for the compile-out contract.

#include "obs/trace.h"

#ifdef OPCQA_TRACING

#include <algorithm>

namespace opcqa {
namespace obs {

SpanTracer& SpanTracer::Global() {
  // Leaked singleton (failpoint discipline): thread-local logs may
  // outlive main() and must still find the registry.
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

SpanTracer::ThreadLog& SpanTracer::Local() {
  thread_local std::shared_ptr<ThreadLog> log = [this] {
    auto fresh = std::make_shared<ThreadLog>();
    std::lock_guard<std::mutex> lock(mutex_);
    fresh->index = static_cast<uint32_t>(logs_.size());
    logs_.push_back(fresh);
    return fresh;
  }();
  return *log;
}

void SpanTracer::Enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<ThreadLog>& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->spans.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

std::vector<SpanRecord> SpanTracer::Collect() const {
  std::vector<SpanRecord> merged;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<ThreadLog>& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    merged.insert(merged.end(), log->spans.begin(), log->spans.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return merged;
}

void SpanTracer::Finish(const char* name, uint64_t start_ns, uint32_t depth) {
  ThreadLog& log = Local();
  log.depth = depth;  // balanced even if Disable() raced the span
  SpanRecord record;
  record.name = name;
  record.request_id = log.request_id;
  record.tenant = log.tenant;
  record.thread = log.index;
  record.depth = depth;
  record.start_ns = start_ns;
  uint64_t now = NowNanos();
  record.dur_ns = now > start_ns ? now - start_ns : 0;
  std::lock_guard<std::mutex> lock(log.mutex);
  log.spans.push_back(std::move(record));
}

}  // namespace obs
}  // namespace opcqa

#endif  // OPCQA_TRACING
