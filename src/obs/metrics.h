// Unified metrics: one process-global registry of named counters, gauges
// and log-bucketed latency histograms, always compiled in (unlike the
// tracer, obs/trace.h) and cheap enough to leave on in serving builds —
// the CI bench-smoke job gates BM_ServingThroughput with the registry
// live at <= 3% over the pre-registry baseline (pr10_obs_overhead_ms).
//
// ## Hot path
//
// Every mutation is one relaxed atomic RMW on a per-thread shard:
// threads hash to one of kMetricShards cache-line-sized slots, so eight
// workers bumping the same counter touch eight different lines.
// Snapshot() merges the shards; totals are exact once the writing
// threads are quiescent (and a monotone under-approximation while they
// are not — fetch_add never loses an increment). A registry-wide kill
// switch (set_enabled) exists solely so the overhead bench can measure
// its own cost; product code never turns it off.
//
// ## Histograms
//
// Latencies are recorded in nanoseconds into logarithmic buckets: exact
// below 16 ns, then 4 sub-buckets per power of two. A bucket's bounds
// are within 1.25x of each other, so the nearest-rank percentiles
// (p50/p95/p99) extracted from the merged buckets land within 12.5% of
// the true sample — tests/obs_test.cc asserts this against a
// sorted-vector oracle.
//
// ## Absorbing the legacy stats structs
//
// MemoStats, DiskTierStats, PlannerStats and ServerStats remain the
// source-compatible per-subsystem views; obs/stats_export.h folds them
// into a MetricsSnapshot so the CLI prints ONE merged RenderText()
// surface (the serve-mode summary) instead of per-subsystem counter
// lines. The metric name catalog lives in docs/OBSERVABILITY.md.

#ifndef OPCQA_OBS_METRICS_H_
#define OPCQA_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace opcqa {
namespace obs {

/// Stripe count for the per-thread shards. Threads are assigned a stripe
/// round-robin on first use; more threads than stripes share (still
/// correct — the slots are atomic — just more contended).
inline constexpr size_t kMetricShards = 8;

namespace internal {

/// The calling thread's stripe, assigned once per thread.
inline size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

}  // namespace internal

/// Merged, percentile-extracted view of one histogram. All milliseconds.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Point-in-time merged view of every registered metric (plus whatever
/// the stats_export.h converters folded in). Maps, so RenderText() is
/// sorted and stable across runs.
struct MetricsSnapshot {
  std::map<std::string, uint64_t, std::less<>> counters;
  std::map<std::string, int64_t, std::less<>> gauges;
  std::map<std::string, HistogramSnapshot, std::less<>> histograms;

  /// The one text surface: one line per metric, name-sorted within each
  /// kind ("counter <name> <value>", "gauge ...", "hist <name>
  /// count=... sum=...ms p50=... p95=... p99=... max=...").
  std::string RenderText() const;
};

/// Monotone counter, sharded per thread. Handles are created by (and
/// owned by) MetricsRegistry; they live for the process.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Total() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
  const std::atomic<bool>* enabled_;
};

/// Last-write-wins instantaneous value (single slot: gauges are set at
/// reporting points, not on hot paths).
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed latency histogram (nanosecond resolution, millisecond
/// reporting). Buckets 0..15 are exact nanosecond counts; above that,
/// 4 sub-buckets per power of two up to ~2^42 ns (~73 min), overflow
/// clamped into the last bucket.
class Histogram {
 public:
  static constexpr size_t kExactBuckets = 16;
  static constexpr size_t kSubBuckets = 4;
  static constexpr size_t kMinOctave = 4;   // 2^4 = kExactBuckets
  static constexpr size_t kMaxOctave = 41;  // ~36.7 minutes in ns
  static constexpr size_t kBuckets =
      kExactBuckets + (kMaxOctave - kMinOctave + 1) * kSubBuckets;

  static size_t BucketIndex(uint64_t nanos);
  /// Inclusive lower / exclusive upper bound of a bucket, in nanos.
  static uint64_t BucketLow(size_t index);
  static uint64_t BucketHigh(size_t index);

  void RecordNanos(uint64_t nanos);
  void Record(double ms) {
    RecordNanos(ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1e6));
  }

  HistogramSnapshot Snapshot() const;

  bool enabled() const {
    return enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled)
      : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> sum_ns{0};
  };
  std::unique_ptr<Shard[]> shards_{new Shard[kMetricShards]};
  std::atomic<uint64_t> min_ns_{UINT64_MAX};
  std::atomic<uint64_t> max_ns_{0};
  const std::atomic<bool>* enabled_;
};

/// Times a scope into a histogram (milliseconds). Null histogram or a
/// disabled registry skips the clock reads entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr && histogram_->enabled()) {
      start_ = std::chrono::steady_clock::now();
    } else {
      histogram_ = nullptr;
    }
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->RecordNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// The process-global registry. Get* interns by name and returns a
/// stable handle (idiomatic call-site pattern: a function-local static
/// pointer, so the name lookup happens once).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Kill switch for the overhead bench's A/B arms — product code never
  /// disables the registry.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merged view of every registered metric.
  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<bool> enabled_{true};
};

}  // namespace obs
}  // namespace opcqa

#endif  // OPCQA_OBS_METRICS_H_
