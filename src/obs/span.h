// A finished span, as recorded by the tracer (obs/trace.h) and consumed
// by the exporters (obs/chrome_trace.h). Deliberately outside the
// OPCQA_TRACING guard: the exporters are plain data-to-string code that
// tests exercise in every build, while the tracer that *produces* spans
// in product code compiles out entirely (zero symbols) in stock builds.

#ifndef OPCQA_OBS_SPAN_H_
#define OPCQA_OBS_SPAN_H_

#include <cstdint>
#include <string>

namespace opcqa {
namespace obs {

struct SpanRecord {
  /// Site name ("server.request", "engine.enumerate", ...). The span
  /// inventory is documented in docs/OBSERVABILITY.md.
  std::string name;
  /// Request context captured at span entry (obs/trace.h
  /// OPCQA_TRACE_REQUEST); 0/"" outside any request scope.
  uint64_t request_id = 0;
  std::string tenant;
  /// Dense per-tracer thread index (not the OS tid).
  uint32_t thread = 0;
  /// Nesting depth at entry on this thread (0 = top level).
  uint32_t depth = 0;
  /// Steady-clock nanoseconds since the tracer's Enable() epoch.
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

}  // namespace obs
}  // namespace opcqa

#endif  // OPCQA_OBS_SPAN_H_
