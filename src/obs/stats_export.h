// Folds the per-subsystem stats structs — which stay the
// source-compatible views their call sites already use — into an
// obs::MetricsSnapshot, so one RenderText() covers the whole serving
// stack (the opcqa_cli serve-mode summary and --metrics dump). Metric
// names follow the docs/OBSERVABILITY.md catalog: "server.*",
// "cache.*", "disk.*", "planner.*".

#ifndef OPCQA_OBS_STATS_EXPORT_H_
#define OPCQA_OBS_STATS_EXPORT_H_

#include "obs/metrics.h"
#include "planner/planner.h"
#include "repair/memo.h"
#include "repair/repair_cache.h"
#include "server/ocqa_server.h"

namespace opcqa {
namespace obs {

/// Monotone fields become counters; entries/bytes become gauges.
void ExportMemoStats(const MemoStats& stats, MetricsSnapshot* out);
void ExportDiskTierStats(const DiskTierStats& stats, MetricsSnapshot* out);
void ExportPlannerStats(const planner::PlannerStats& stats,
                        MetricsSnapshot* out);

/// The whole server view: queue/batch/failure buckets plus the nested
/// cache/disk/planner aggregates via the exporters above.
void ExportServerStats(const server::ServerStats& stats, MetricsSnapshot* out);

}  // namespace obs
}  // namespace opcqa

#endif  // OPCQA_OBS_STATS_EXPORT_H_
