#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace opcqa {
namespace obs {

namespace {

double NanosToMs(uint64_t nanos) {
  return static_cast<double>(nanos) / 1e6;
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t nanos) {
  if (nanos < kExactBuckets) return static_cast<size_t>(nanos);
  size_t octave = static_cast<size_t>(std::bit_width(nanos)) - 1;
  if (octave > kMaxOctave) return kBuckets - 1;
  size_t sub = static_cast<size_t>(nanos >> (octave - 2)) & 3;
  return kExactBuckets + (octave - kMinOctave) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLow(size_t index) {
  if (index < kExactBuckets) return index;
  size_t octave = kMinOctave + (index - kExactBuckets) / kSubBuckets;
  size_t sub = (index - kExactBuckets) % kSubBuckets;
  return (uint64_t{1} << octave) + sub * (uint64_t{1} << (octave - 2));
}

uint64_t Histogram::BucketHigh(size_t index) {
  if (index < kExactBuckets) return index + 1;
  size_t octave = kMinOctave + (index - kExactBuckets) / kSubBuckets;
  return BucketLow(index) + (uint64_t{1} << (octave - 2));
}

void Histogram::RecordNanos(uint64_t nanos) {
  if (!enabled()) return;
  Shard& shard = shards_[internal::ThreadShard()];
  shard.buckets[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  shard.sum_ns.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (nanos < seen && !min_ns_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_ns_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  uint64_t buckets[kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  for (size_t s = 0; s < kMetricShards; ++s) {
    const Shard& shard = shards_[s];
    for (size_t b = 0; b < kBuckets; ++b) {
      uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
      buckets[b] += n;
      count += n;
    }
    sum_ns += shard.sum_ns.load(std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot;
  snapshot.count = count;
  snapshot.sum_ms = NanosToMs(sum_ns);
  if (count == 0) return snapshot;
  uint64_t min_ns = min_ns_.load(std::memory_order_relaxed);
  uint64_t max_ns = max_ns_.load(std::memory_order_relaxed);
  snapshot.min_ms = NanosToMs(min_ns == UINT64_MAX ? 0 : min_ns);
  snapshot.max_ms = NanosToMs(max_ns);
  // Nearest-rank percentile over the merged buckets; the reported value
  // is the midpoint of the rank's bucket, clamped to the observed
  // extremes (exact when the bucket is an exact small-nanos one).
  auto percentile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      cumulative += buckets[b];
      if (cumulative >= rank) {
        uint64_t low = BucketLow(b);
        uint64_t high = BucketHigh(b);
        uint64_t mid = low + (high - low) / 2;
        if (mid < min_ns) mid = min_ns;
        if (mid > max_ns) mid = max_ns;
        return NanosToMs(mid);
      }
    }
    return NanosToMs(max_ns);
  };
  snapshot.p50_ms = percentile(0.50);
  snapshot.p95_ms = percentile(0.95);
  snapshot.p99_ms = percentile(0.99);
  return snapshot;
}

std::string MetricsSnapshot::RenderText() const {
  std::string out = "== metrics snapshot ==\n";
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter  %-38s %llu\n",
                  name.c_str(), static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "gauge    %-38s %lld\n",
                  name.c_str(), static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "hist     %-38s count=%llu sum=%.3fms p50=%.3f "
                  "p95=%.3f p99=%.3f max=%.3f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum_ms, h.p50_ms, h.p95_ms, h.p99_ms, h.max_ms);
    out += line;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton (like FailpointRegistry): metric handles must stay
  // valid through static destruction of late reporters.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(&enabled_)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Total();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

}  // namespace obs
}  // namespace opcqa
