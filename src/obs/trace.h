// Span-based tracing — OPCQA_TRACE_SPAN(name) RAII sites threaded
// through server unit execution, planner dispatch, chain-walk
// enumeration, cache probe/spill/restore and snapshot-store Put/Get/GC,
// compiled behind OPCQA_TRACING with the failpoint discipline
// (util/failpoint.h): without the definition every macro expands to
// `do {} while (0)` / an empty scope object and trace.cc compiles to an
// empty translation unit, so stock builds carry no branch, no symbol
// and no byte of the tracer (CI asserts `nm | grep -c SpanTracer` == 0
// next to the failpoint check).
//
// ## Model
//
// A span is a named interval on one thread. Spans nest lexically; the
// per-thread depth at entry is recorded so exporters can re-indent the
// tree without interval arithmetic. OPCQA_TRACE_REQUEST(id, tenant)
// stamps the current thread's request context; every span opened inside
// the scope carries it — that is what turns a served trace into
// per-request phase timelines (opcqa_cli --trace-out / --slow-ms).
//
// ## Runtime switch
//
// Compiled-in but disabled (the default even in tracing builds until
// Enable() — the CLI enables it when --trace-out or --slow-ms is set),
// a span site costs one relaxed atomic load, same as an unarmed
// failpoint. Enabled, each span end appends one record to a per-thread
// buffer under that buffer's (uncontended) mutex; Collect() merges.
// Tracing never changes answers — tests/obs_test.cc asserts tracing-on
// byte-identity.

#ifndef OPCQA_OBS_TRACE_H_
#define OPCQA_OBS_TRACE_H_

#ifdef OPCQA_TRACING

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/span.h"

namespace opcqa {
namespace obs {

class SpanTracer {
 public:
  /// Per-thread span buffer + context. Owned jointly by the thread
  /// (thread_local shared_ptr) and the tracer's registry, so records
  /// survive thread exit until Collect().
  struct ThreadLog {
    uint32_t index = 0;
    uint32_t depth = 0;
    uint64_t request_id = 0;
    std::string tenant;
    std::mutex mutex;  // guards `spans` against Collect()/Enable()
    std::vector<SpanRecord> spans;
  };

  static SpanTracer& Global();

  /// Arms the tracer: clears every thread's buffer and resets the
  /// epoch. Not thread-safe against in-flight spans — call before
  /// serving starts (the CLI does it before any work).
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merged records from every thread, (thread, start) ordered.
  std::vector<SpanRecord> Collect() const;

  /// The calling thread's log, registered on first use.
  ThreadLog& Local();

  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Appends a finished span for the calling thread (TraceSpan dtor).
  void Finish(const char* name, uint64_t start_ns, uint32_t depth);

 private:
  SpanTracer() = default;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII span (use via OPCQA_TRACE_SPAN). Captures the enabled check at
/// entry: a span open across Disable() still records, keeping depths
/// balanced.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    SpanTracer& tracer = SpanTracer::Global();
    if (!tracer.enabled()) return;
    name_ = name;
    start_ns_ = tracer.NowNanos();
    depth_ = tracer.Local().depth++;
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    SpanTracer::Global().Finish(name_, start_ns_, depth_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

/// RAII request context (use via OPCQA_TRACE_REQUEST): spans opened
/// inside the scope carry (request_id, tenant). Restores the previous
/// context on exit, so nested scopes (a unit member inside a unit) work.
class TraceRequestScope {
 public:
  TraceRequestScope(uint64_t request_id, std::string_view tenant) {
    SpanTracer::ThreadLog& log = SpanTracer::Global().Local();
    previous_id_ = log.request_id;
    previous_tenant_ = std::move(log.tenant);
    log.request_id = request_id;
    log.tenant = std::string(tenant);
  }
  ~TraceRequestScope() {
    SpanTracer::ThreadLog& log = SpanTracer::Global().Local();
    log.request_id = previous_id_;
    log.tenant = std::move(previous_tenant_);
  }

  TraceRequestScope(const TraceRequestScope&) = delete;
  TraceRequestScope& operator=(const TraceRequestScope&) = delete;

 private:
  uint64_t previous_id_ = 0;
  std::string previous_tenant_;
};

}  // namespace obs
}  // namespace opcqa

#define OPCQA_TRACE_CONCAT_INNER(a, b) a##b
#define OPCQA_TRACE_CONCAT(a, b) OPCQA_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define OPCQA_TRACE_SPAN(name)    \
  ::opcqa::obs::TraceSpan OPCQA_TRACE_CONCAT(opcqa_trace_span_, \
                                             __LINE__)(name)

/// Stamps the request context for the rest of the enclosing scope.
#define OPCQA_TRACE_REQUEST(id, tenant)                         \
  ::opcqa::obs::TraceRequestScope OPCQA_TRACE_CONCAT(           \
      opcqa_trace_request_, __LINE__)((id), (tenant))

#else  // !OPCQA_TRACING

// Stock build: the tracer vanishes. No class, no atomic load, no
// symbols — `nm libopcqa.a | grep SpanTracer` finds nothing (asserted
// in CI bench-smoke, like the failpoint registry).
#define OPCQA_TRACE_SPAN(name) \
  do {                         \
  } while (0)
#define OPCQA_TRACE_REQUEST(id, tenant) \
  do {                                  \
  } while (0)

#endif  // OPCQA_TRACING

#endif  // OPCQA_OBS_TRACE_H_
