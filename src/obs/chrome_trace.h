// Span exporters: Chrome trace_event JSON (chrome://tracing / Perfetto)
// and the stderr span-tree renderer behind opcqa_cli --slow-ms. Pure
// functions over SpanRecord vectors — compiled in every build; only the
// span *producer* (obs/trace.h) is behind OPCQA_TRACING.

#ifndef OPCQA_OBS_CHROME_TRACE_H_
#define OPCQA_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.h"

namespace opcqa {
namespace obs {

/// Chrome trace_event JSON: one complete ("ph":"X") event per span,
/// microsecond timestamps, request id + tenant in args. Loadable in
/// chrome://tracing and Perfetto.
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

/// Distinct nonzero request ids, ascending.
std::vector<uint64_t> TraceRequestIds(const std::vector<SpanRecord>& spans);

/// Wall time of one request: max end minus min start over its spans
/// (0 when the id has none). With the server's per-member span this is
/// the member's execution wall clock.
double RequestWallMs(const std::vector<SpanRecord>& spans, uint64_t request_id);

/// Indented per-request timeline ordered by start time, depth-indented —
/// the --slow-ms stderr format.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans,
                           uint64_t request_id);

}  // namespace obs
}  // namespace opcqa

#endif  // OPCQA_OBS_CHROME_TRACE_H_
