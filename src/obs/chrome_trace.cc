#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace opcqa {
namespace obs {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<const SpanRecord*> SpansFor(
    const std::vector<SpanRecord>& spans, uint64_t request_id) {
  std::vector<const SpanRecord*> mine;
  for (const SpanRecord& span : spans) {
    if (span.request_id == request_id) mine.push_back(&span);
  }
  std::sort(mine.begin(), mine.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->start_ns != b->start_ns) {
                return a->start_ns < b->start_ns;
              }
              return a->depth < b->depth;
            });
  return mine;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[128];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i != 0) out += ",";
    out += "\n{\"name\":\"";
    out += JsonEscape(span.name);
    out += "\",\"cat\":\"opcqa\",\"ph\":\"X\",\"pid\":1";
    std::snprintf(buf, sizeof(buf), ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  span.thread, static_cast<double>(span.start_ns) / 1e3,
                  static_cast<double>(span.dur_ns) / 1e3);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"request\":%llu",
                  static_cast<unsigned long long>(span.request_id));
    out += buf;
    out += ",\"tenant\":\"";
    out += JsonEscape(span.tenant);
    out += "\"}}";
  }
  out += "\n]}\n";
  return out;
}

std::vector<uint64_t> TraceRequestIds(const std::vector<SpanRecord>& spans) {
  std::set<uint64_t> ids;
  for (const SpanRecord& span : spans) {
    if (span.request_id != 0) ids.insert(span.request_id);
  }
  return std::vector<uint64_t>(ids.begin(), ids.end());
}

double RequestWallMs(const std::vector<SpanRecord>& spans,
                     uint64_t request_id) {
  uint64_t begin = UINT64_MAX;
  uint64_t end = 0;
  for (const SpanRecord& span : spans) {
    if (span.request_id != request_id) continue;
    begin = std::min(begin, span.start_ns);
    end = std::max(end, span.start_ns + span.dur_ns);
  }
  if (begin == UINT64_MAX) return 0.0;
  return static_cast<double>(end - begin) / 1e6;
}

std::string RenderSpanTree(const std::vector<SpanRecord>& spans,
                           uint64_t request_id) {
  std::vector<const SpanRecord*> mine = SpansFor(spans, request_id);
  if (mine.empty()) return "";
  // Indent relative to the request's own outermost span, so a request
  // that ran deep inside a unit still renders from column zero.
  uint32_t base_depth = UINT32_MAX;
  for (const SpanRecord* span : mine) {
    base_depth = std::min(base_depth, span->depth);
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf), "request %llu (tenant %s) — %.3f ms\n",
                static_cast<unsigned long long>(request_id),
                mine.front()->tenant.c_str(), RequestWallMs(spans, request_id));
  std::string out = buf;
  for (const SpanRecord* span : mine) {
    std::string indent(2 * (span->depth - base_depth + 1), ' ');
    std::snprintf(buf, sizeof(buf), "%s%-*s %10.3f ms\n", indent.c_str(),
                  static_cast<int>(40 - indent.size()), span->name.c_str(),
                  static_cast<double>(span->dur_ns) / 1e6);
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace opcqa
