#include "planner/attack_graph.h"

#include <algorithm>
#include <functional>
#include <set>

#include "util/string_util.h"

namespace opcqa {
namespace planner {

namespace {

/// One recognized key-style EGD: relation, shared (key) positions, and the
/// single non-key position the equality covers.
struct KeyEgd {
  PredId pred = 0;
  std::vector<size_t> key_positions;  // sorted
  size_t covered_position = 0;
};

/// Recognizes one constraint as a key-style EGD:
///   R(x̄_K, ȳ), R(x̄_K, z̄) → y_j = z_j
/// with the two atoms sharing exactly the variables at the key positions
/// K, all other variables pairwise distinct, and the equality taken at one
/// common non-key position j. Returns false (leaving a reason) otherwise.
bool RecognizeKeyEgd(const Constraint& constraint, KeyEgd* out,
                     std::string* reason) {
  if (!constraint.is_egd()) {
    *reason = "non-EGD constraint";
    return false;
  }
  const std::vector<Atom>& atoms = constraint.body().atoms();
  if (atoms.size() != 2 || atoms[0].pred() != atoms[1].pred() ||
      atoms[0].arity() != atoms[1].arity()) {
    *reason = "EGD body is not two atoms over one relation";
    return false;
  }
  size_t arity = atoms[0].arity();
  std::map<VarId, size_t> occurrences;
  for (const Atom& atom : atoms) {
    for (const Term& term : atom.terms()) {
      if (!term.is_var()) {
        *reason = "EGD body mentions constants";
        return false;
      }
      ++occurrences[term.var()];
    }
  }
  out->pred = atoms[0].pred();
  out->key_positions.clear();
  std::vector<size_t> open;  // non-shared positions
  for (size_t i = 0; i < arity; ++i) {
    VarId a = atoms[0].terms()[i].var();
    VarId b = atoms[1].terms()[i].var();
    if (a == b) {
      // A shared variable must occur exactly once per atom (else the EGD
      // constrains more than key-agreement).
      if (occurrences[a] != 2) {
        *reason = "shared variable reused outside its key position";
        return false;
      }
      out->key_positions.push_back(i);
    } else {
      if (occurrences[a] != 1 || occurrences[b] != 1) {
        *reason = "non-key variable occurs more than once";
        return false;
      }
      open.push_back(i);
    }
  }
  VarId lhs = constraint.eq_lhs();
  VarId rhs = constraint.eq_rhs();
  bool found = false;
  for (size_t i : open) {
    VarId a = atoms[0].terms()[i].var();
    VarId b = atoms[1].terms()[i].var();
    if ((a == lhs && b == rhs) || (a == rhs && b == lhs)) {
      out->covered_position = i;
      found = true;
      break;
    }
  }
  if (!found) {
    *reason = "equality does not pair one non-key position";
    return false;
  }
  return true;
}

/// Closure of `start` under the FDs lhs → rhs (fixpoint iteration; query
/// bodies are tiny).
std::set<VarId> FdClosure(
    const std::set<VarId>& start,
    const std::vector<std::pair<std::vector<VarId>, std::vector<VarId>>>&
        fds) {
  std::set<VarId> closure = start;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [lhs, rhs] : fds) {
      bool applies = std::all_of(lhs.begin(), lhs.end(), [&](VarId v) {
        return closure.count(v) > 0;
      });
      if (!applies) continue;
      for (VarId v : rhs) changed |= closure.insert(v).second;
    }
  }
  return closure;
}

/// Existential (non-frozen) variables of one atom, deduplicated.
std::vector<VarId> ExistentialVars(const Atom& atom,
                                   const std::set<VarId>& frozen) {
  std::vector<VarId> vars;
  atom.CollectVariables(&vars);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  std::erase_if(vars, [&](VarId v) { return frozen.count(v) > 0; });
  return vars;
}

/// Existential variables at the key positions of one atom.
std::vector<VarId> ExistentialKeyVars(const Atom& atom,
                                      const std::vector<size_t>& key_positions,
                                      const std::set<VarId>& frozen) {
  std::vector<VarId> vars;
  for (size_t i : key_positions) {
    const Term& term = atom.terms()[i];
    if (term.is_var() && frozen.count(term.var()) == 0) {
      vars.push_back(term.var());
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

/// Attack edges among `atoms` (restricted to indices in `alive`) with the
/// free/fixed variables `frozen` treated as constants.
std::vector<AttackEdge> ComputeAttacks(const std::vector<Atom>& atoms,
                                       const std::vector<size_t>& alive,
                                       const KeyExtraction& keys,
                                       const std::set<VarId>& frozen) {
  std::map<size_t, std::vector<VarId>> exvars, keyvars;
  for (size_t i : alive) {
    exvars[i] = ExistentialVars(atoms[i], frozen);
    keyvars[i] = ExistentialKeyVars(
        atoms[i], keys.KeyPositions(atoms[i].pred(), atoms[i].arity()),
        frozen);
  }
  auto share_outside = [&](size_t a, size_t b,
                           const std::set<VarId>& closure) {
    for (VarId v : exvars[a]) {
      if (closure.count(v) > 0) continue;
      if (std::binary_search(exvars[b].begin(), exvars[b].end(), v)) {
        return true;
      }
    }
    return false;
  };
  std::vector<AttackEdge> edges;
  for (size_t f : alive) {
    // F^{+,q}: closure of key(F) under the FDs of the *other* atoms.
    std::vector<std::pair<std::vector<VarId>, std::vector<VarId>>> fds;
    for (size_t g : alive) {
      if (g != f) fds.emplace_back(keyvars[g], exvars[g]);
    }
    std::set<VarId> closure =
        FdClosure({keyvars[f].begin(), keyvars[f].end()}, fds);
    // BFS from F along existential variables outside the closure.
    std::set<size_t> reached;
    std::vector<size_t> frontier = {f};
    while (!frontier.empty()) {
      size_t h = frontier.back();
      frontier.pop_back();
      for (size_t g : alive) {
        if (g == h || reached.count(g) > 0) continue;
        if (g == f) continue;  // self-attacks are not part of the graph
        if (!share_outside(h, g, closure)) continue;
        reached.insert(g);
        frontier.push_back(g);
      }
    }
    for (size_t g : reached) edges.push_back(AttackEdge{f, g});
  }
  return edges;
}

/// True when the directed attack graph has a cycle (DFS; bodies are tiny).
bool HasCycle(const std::vector<AttackEdge>& edges,
              const std::vector<size_t>& alive) {
  std::map<size_t, std::vector<size_t>> adjacency;
  for (const AttackEdge& e : edges) adjacency[e.from].push_back(e.to);
  std::map<size_t, int> state;  // 0 = new, 1 = open, 2 = done
  std::function<bool(size_t)> visit = [&](size_t node) {
    state[node] = 1;
    for (size_t next : adjacency[node]) {
      if (state[next] == 1) return true;
      if (state[next] == 0 && visit(next)) return true;
    }
    state[node] = 2;
    return false;
  };
  for (size_t node : alive) {
    if (state[node] == 0 && visit(node)) return true;
  }
  return false;
}

CertaintyClassification Fallback(KeyExtraction keys, std::string reason) {
  CertaintyClassification cls;
  cls.rewritable = false;
  cls.reason = std::move(reason);
  cls.keys = std::move(keys);
  return cls;
}

}  // namespace

std::vector<size_t> KeyExtraction::KeyPositions(PredId pred,
                                                size_t arity) const {
  auto it = keys.find(pred);
  if (it != keys.end()) return it->second;
  std::vector<size_t> all(arity);
  for (size_t i = 0; i < arity; ++i) all[i] = i;
  return all;
}

KeyExtraction ExtractPrimaryKeys(const ConstraintSet& constraints) {
  KeyExtraction extraction;
  // Relation → (key positions, covered non-key positions) as recognized
  // EGDs accumulate; every EGD of a relation must agree on the key.
  std::map<PredId, std::pair<std::vector<size_t>, std::set<size_t>>> partial;
  std::map<PredId, size_t> arity_of;
  for (const Constraint& constraint : constraints) {
    KeyEgd egd;
    std::string reason;
    if (!RecognizeKeyEgd(constraint, &egd, &reason)) {
      extraction.reason =
          StrCat("constraint '", constraint.label(), "' is not a key-style "
                 "EGD (", reason, ")");
      return extraction;
    }
    arity_of[egd.pred] = constraint.body().atoms()[0].arity();
    auto [it, inserted] = partial.try_emplace(
        egd.pred, egd.key_positions, std::set<size_t>{egd.covered_position});
    if (!inserted) {
      if (it->second.first != egd.key_positions) {
        extraction.reason = StrCat(
            "relation of constraint '", constraint.label(),
            "' has EGDs with conflicting key positions");
        return extraction;
      }
      it->second.second.insert(egd.covered_position);
    }
  }
  for (const auto& [pred, entry] : partial) {
    const auto& [key_positions, covered] = entry;
    // The EGDs must cover every non-key position, else Σ is weaker than a
    // primary key and the KW dichotomy does not apply as-is.
    for (size_t i = 0; i < arity_of[pred]; ++i) {
      bool is_key = std::binary_search(key_positions.begin(),
                                       key_positions.end(), i);
      if (!is_key && covered.count(i) == 0) {
        extraction.reason = StrCat(
            "EGDs cover only part of a relation's non-key positions");
        return extraction;
      }
    }
    extraction.keys[pred] = key_positions;
  }
  extraction.ok = true;
  return extraction;
}

CertaintyClassification ClassifyCertainty(const Query& query,
                                          const ConstraintSet& constraints,
                                          const Schema& schema) {
  KeyExtraction keys = ExtractPrimaryKeys(constraints);
  if (!keys.ok) {
    std::string reason = keys.reason;
    return Fallback(std::move(keys), std::move(reason));
  }
  if (!query.IsConjunctive()) {
    return Fallback(std::move(keys), "query is not conjunctive");
  }
  const Conjunction& body = query.conjunctive_view()->body;
  const std::vector<Atom>& atoms = body.atoms();
  std::set<PredId> seen;
  for (const Atom& atom : atoms) {
    if (!seen.insert(atom.pred()).second) {
      return Fallback(std::move(keys),
                      StrCat("query has a self-join on ",
                             schema.RelationName(atom.pred())));
    }
  }

  CertaintyClassification cls;
  cls.keys = std::move(keys);
  std::set<VarId> frozen(query.head().begin(), query.head().end());
  std::vector<size_t> alive(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) alive[i] = i;

  cls.attacks = ComputeAttacks(atoms, alive, cls.keys, frozen);
  if (HasCycle(cls.attacks, alive)) {
    cls.rewritable = false;
    cls.reason = "cyclic attack graph";
    return cls;
  }

  // Greedy elimination: repeatedly take the lowest-index atom unattacked
  // within the remaining subquery, then treat its variables as constants
  // (the rewriting binds them at that step). Recomputing attacks each
  // round is conservative — shrinking FD sets can create attacks the full
  // graph lacked; failing to order then simply falls back to the walk.
  while (!alive.empty()) {
    std::vector<AttackEdge> attacks =
        ComputeAttacks(atoms, alive, cls.keys, frozen);
    std::set<size_t> attacked;
    for (const AttackEdge& e : attacks) attacked.insert(e.to);
    size_t pick = atoms.size();
    for (size_t i : alive) {
      if (attacked.count(i) == 0) {
        pick = i;
        break;
      }
    }
    if (pick == atoms.size()) {
      cls.rewritable = false;
      cls.reason = StrCat("no unattacked atom after eliminating ",
                          cls.elimination_order.size(), " atom(s)");
      cls.elimination_order.clear();
      return cls;
    }
    cls.elimination_order.push_back(pick);
    std::vector<VarId> vars;
    atoms[pick].CollectVariables(&vars);
    frozen.insert(vars.begin(), vars.end());
    std::erase(alive, pick);
  }

  cls.rewritable = true;
  cls.reason = "self-join-free CQ under primary keys; acyclic attack graph";
  return cls;
}

}  // namespace planner
}  // namespace opcqa
