#include "planner/certain_rewriting.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "util/string_util.h"

namespace opcqa {
namespace planner {

namespace {

/// Fresh-variable supply that never collides with the query's own
/// variables (interned names "kw0", "kw1", … skipping used ids).
class FreshVars {
 public:
  explicit FreshVars(const Query& query) {
    for (VarId v : query.head()) used_.insert(v);
    if (query.IsConjunctive()) {
      for (const Atom& atom : query.conjunctive_view()->body.atoms()) {
        std::vector<VarId> vars;
        atom.CollectVariables(&vars);
        used_.insert(vars.begin(), vars.end());
      }
    }
  }

  VarId Next() {
    for (;;) {
      VarId v = Var(StrCat("kw", counter_++));
      if (used_.insert(v).second) return v;
    }
  }

 private:
  std::set<VarId> used_;
  size_t counter_ = 0;
};

Atom SubstituteVars(const Atom& atom, const std::map<VarId, VarId>& subst) {
  std::vector<Term> terms = atom.terms();
  for (Term& term : terms) {
    if (!term.is_var()) continue;
    auto it = subst.find(term.var());
    if (it != subst.end()) term = Term::MakeVar(it->second);
  }
  return Atom(atom.pred(), std::move(terms));
}

FormulaPtr AndAll(std::vector<FormulaPtr> parts) {
  if (parts.empty()) return Formula::True();
  if (parts.size() == 1) return parts[0];
  return Formula::And(std::move(parts));
}

/// Eliminates atoms front-to-back (already in unattacked-first order).
/// `bound` holds every variable fixed by the enclosing scope — the query's
/// free variables plus key/survivor variables bound by earlier steps.
FormulaPtr Eliminate(std::vector<Atom> atoms, std::set<VarId> bound,
                     const KeyExtraction& keys, FreshVars* fresh) {
  if (atoms.empty()) return Formula::True();
  const Atom f = atoms.front();
  std::vector<Atom> rest(atoms.begin() + 1, atoms.end());

  std::vector<size_t> key_positions = keys.KeyPositions(f.pred(), f.arity());
  std::vector<bool> is_key(f.arity(), false);
  for (size_t i : key_positions) is_key[i] = true;

  // Key variables of F become existentially bound at this step (the
  // rewriting picks one key group).
  std::vector<VarId> key_ex;
  for (size_t i : key_positions) {
    const Term& term = f.terms()[i];
    if (!term.is_var()) continue;
    if (bound.insert(term.var()).second) key_ex.push_back(term.var());
  }

  // Non-key positions get fresh survivor variables z̄: the group pattern
  // R(t̄_K, z̄) ranges over the whole key group, `eqs` pins z_j wherever F
  // carried a constant / bound / repeated term, and `subst` carries F's
  // own non-key variables into the remaining atoms as z̄.
  std::vector<VarId> zvars;
  std::vector<FormulaPtr> eqs;
  std::map<VarId, VarId> subst;
  std::vector<Term> pattern = f.terms();
  for (size_t j = 0; j < f.arity(); ++j) {
    if (is_key[j]) continue;
    VarId z = fresh->Next();
    zvars.push_back(z);
    const Term& term = f.terms()[j];
    if (!term.is_var() || bound.count(term.var()) > 0) {
      eqs.push_back(Formula::Equals(Term::MakeVar(z), term));
    } else if (auto it = subst.find(term.var()); it != subst.end()) {
      eqs.push_back(
          Formula::Equals(Term::MakeVar(z), Term::MakeVar(it->second)));
    } else {
      subst[term.var()] = z;
    }
    pattern[j] = Term::MakeVar(z);
  }
  bound.insert(zvars.begin(), zvars.end());
  for (Atom& atom : rest) atom = SubstituteVars(atom, subst);

  FormulaPtr rest_formula =
      Eliminate(std::move(rest), std::move(bound), keys, fresh);

  FormulaPtr group = Formula::MakeAtom(Atom(f.pred(), std::move(pattern)));
  FormulaPtr witness =
      zvars.empty() ? group : Formula::Exists(zvars, group);
  std::vector<FormulaPtr> consequent = std::move(eqs);
  consequent.push_back(std::move(rest_formula));
  FormulaPtr survivor = Formula::Implies(group, AndAll(std::move(consequent)));
  if (!zvars.empty()) survivor = Formula::Forall(zvars, survivor);
  FormulaPtr step = Formula::And({std::move(witness), std::move(survivor)});
  if (!key_ex.empty()) step = Formula::Exists(std::move(key_ex), step);
  return step;
}

}  // namespace

Result<Query> CompileCertainRewriting(const Query& query,
                                      const CertaintyClassification& cls) {
  if (!cls.rewritable) {
    return Status::InvalidArgument(
        "query is not FO-rewritable: " + cls.reason);
  }
  if (!query.IsConjunctive()) {
    return Status::InvalidArgument("rewriting requires a conjunctive query");
  }
  const std::vector<Atom>& atoms = query.conjunctive_view()->body.atoms();
  if (cls.elimination_order.size() != atoms.size()) {
    return Status::InvalidArgument(
        "classification does not match the query body");
  }
  std::vector<Atom> ordered;
  ordered.reserve(atoms.size());
  for (size_t index : cls.elimination_order) {
    if (index >= atoms.size()) {
      return Status::InvalidArgument("elimination order out of range");
    }
    ordered.push_back(atoms[index]);
  }
  FreshVars fresh(query);
  std::set<VarId> bound(query.head().begin(), query.head().end());
  FormulaPtr body =
      Eliminate(std::move(ordered), std::move(bound), cls.keys, &fresh);
  return Query(query.name(), query.head(), std::move(body));
}

std::set<Tuple> EvaluateCertain(const Database& db, const Query& query,
                                const Query& rewritten) {
  std::set<Tuple> certain;
  std::set<Tuple> candidates = query.Evaluate(db);
  if (candidates.empty()) return certain;
  std::vector<ConstId> domain = db.ActiveDomain();
  for (const Tuple& tuple : candidates) {
    Assignment assignment;
    bool consistent = true;
    for (size_t i = 0; i < rewritten.head().size(); ++i) {
      VarId var = rewritten.head()[i];
      std::optional<ConstId> existing = assignment.Get(var);
      if (existing.has_value()) {
        if (*existing != tuple[i]) {
          consistent = false;
          break;
        }
        continue;
      }
      assignment.Bind(var, tuple[i]);
    }
    if (!consistent) continue;
    if (EvalFormula(*rewritten.body(), db, domain, assignment)) {
      certain.insert(tuple);
    }
  }
  return certain;
}

}  // namespace planner
}  // namespace opcqa
