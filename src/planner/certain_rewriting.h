// The Koutris–Wijsen certain-answer rewriting for FO-rewritable
// CERTAINTY(q) — the fast path the planner dispatches to.
//
// For a self-join-free CQ with an acyclic attack graph, CERTAINTY(q) is
// expressible in first-order logic over the *inconsistent* database. The
// compiler eliminates atoms along the classification's unattacked-first
// order; eliminating F = R(t̄) with key positions K produces
//
//   ∃ x̄_K [ ∃ z̄ R(t̄_K, z̄)  ∧  ∀ z̄ ( R(t̄_K, z̄) →  match(z̄) ∧ rest ) ]
//
// where z̄ are fresh variables for the non-key positions, match(z̄) equates
// z_j with any constant / already-bound term F carried there, and `rest`
// is the rewriting of the remaining atoms with F's non-key variables
// substituted by z̄: whichever tuple of the key group survives a repair,
// it must fit F and extend to the rest of the query. The compiled formula
// is pure FO, so logic/fo_eval.h evaluates it directly on D — no
// RepairingState, no cache, no chain walk.
//
// Evaluation shortcut: certain answers are contained in Q(D) (repairs are
// subsets of D and CQs are monotone), so EvaluateCertain runs the original
// query's conjunctive fast path for candidates and filters each through
// the rewritten body, instead of looping dom(D)^arity.

#ifndef OPCQA_PLANNER_CERTAIN_REWRITING_H_
#define OPCQA_PLANNER_CERTAIN_REWRITING_H_

#include <set>

#include "planner/attack_graph.h"
#include "util/status.h"

namespace opcqa {
namespace planner {

/// Compiles the certain-answer rewriting of `query` (same name and head,
/// first-order body). `cls` must come from ClassifyCertainty on the same
/// (query, Σ) pair with cls.rewritable == true; passing a non-rewritable
/// classification is an InvalidArgument error, never an unsound formula.
Result<Query> CompileCertainRewriting(const Query& query,
                                      const CertaintyClassification& cls);

/// Classical certain answers of `query` over `db` via the compiled
/// rewriting: candidates Q(D), filtered through `rewritten`'s body.
std::set<Tuple> EvaluateCertain(const Database& db, const Query& query,
                                const Query& rewritten);

}  // namespace planner
}  // namespace opcqa

#endif  // OPCQA_PLANNER_CERTAIN_REWRITING_H_
