// Attack-graph classification of CERTAINTY(q) for self-join-free
// conjunctive queries under primary keys (the Koutris–Wijsen dichotomy).
//
// The planner's front door: given the session's ConstraintSet, detect
// whether it is a set of *key-style* EGDs (each the textbook encoding of
// one functional dependency key(R) → pos_j, as produced by
// sql::AppendKeyEgds or written by hand), recover one primary key per
// relation, and — for a self-join-free conjunctive query q — build the
// attack graph:
//
//   * F^{+,q} = closure of key(F) under the FDs {key(G) → vars(G) : G ≠ F}
//     (variables only; the free variables of q are treated as constants);
//   * F attacks G iff some path F = H_0, …, H_k = G of query atoms links
//     consecutive atoms through an existential variable outside F^{+,q}.
//
// CERTAINTY(q) is first-order rewritable iff the attack graph is acyclic
// (Koutris–Wijsen, PODS'15 / JACM'17); the rewriting itself lives in
// planner/certain_rewriting.h. Everything here is *conservative*:
// constraints outside the key-EGD shape, non-sjf or non-conjunctive
// queries, cyclic graphs, and any shape the greedy elimination cannot
// order all classify as non-rewritable with a human-readable reason —
// the planner then falls back to the chain walk, which is always sound.

#ifndef OPCQA_PLANNER_ATTACK_GRAPH_H_
#define OPCQA_PLANNER_ATTACK_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "logic/query.h"

namespace opcqa {
namespace planner {

/// Primary keys recovered from a constraint set of key-style EGDs.
struct KeyExtraction {
  /// True when *every* constraint is a key-style EGD and the EGDs of each
  /// relation assemble into exactly one primary key covering all non-key
  /// positions.
  bool ok = false;
  /// Why extraction failed (empty when ok).
  std::string reason;
  /// Relation → sorted key positions. Relations absent from the map carry
  /// the trivial key "all positions" (no EGD constrains them, so they are
  /// conflict-free by construction).
  std::map<PredId, std::vector<size_t>> keys;

  /// Key positions of `pred` (the trivial full key when unconstrained).
  std::vector<size_t> KeyPositions(PredId pred, size_t arity) const;
};

/// Recognizes Σ as per-relation primary keys. Conservative: any constraint
/// that is not a two-atom same-relation EGD equating one non-key position
/// (with all-distinct variables elsewhere) fails the whole extraction.
KeyExtraction ExtractPrimaryKeys(const ConstraintSet& constraints);

/// One edge of the attack graph: atom `from` attacks atom `to` (indices
/// into the query's conjunctive body).
struct AttackEdge {
  size_t from = 0;
  size_t to = 0;
};

/// The classification verdict for one (query, Σ) pair.
struct CertaintyClassification {
  /// True when CERTAINTY(q) is FO-rewritable *and* the greedy atom
  /// elimination found a complete order (sufficient for the rewriting of
  /// planner/certain_rewriting.h).
  bool rewritable = false;
  /// Human-readable verdict ("acyclic attack graph" or the fallback
  /// reason: out-of-fragment constraint, self-join, attack cycle, …).
  std::string reason;
  /// The recovered primary keys (valid iff the fragment was detected).
  KeyExtraction keys;
  /// Attack edges over body-atom indices (empty for 0/1-atom queries).
  std::vector<AttackEdge> attacks;
  /// Unattacked-first atom order the rewriting eliminates along (a
  /// permutation of the body-atom indices; set iff rewritable).
  std::vector<size_t> elimination_order;
};

/// Classifies CERTAINTY(query) under `constraints`. `schema` is only used
/// to render reasons.
CertaintyClassification ClassifyCertainty(const Query& query,
                                          const ConstraintSet& constraints,
                                          const Schema& schema);

}  // namespace planner
}  // namespace opcqa

#endif  // OPCQA_PLANNER_ATTACK_GRAPH_H_
