// Query-complexity planner: classify each (query, Σ, D, generator) and
// dispatch CERTAINTY-style workloads to the cheapest *sound* backend.
//
// Two backends exist:
//   * kRewriting     — the Koutris–Wijsen FO rewriting evaluated directly
//                      over the inconsistent database (no repair
//                      enumeration at all);
//   * kMemoizedWalk  — the repairing-chain walk (memoized / cached), the
//                      always-sound general engine.
//
// The rewriting decides *classical* certain answers (truth in every
// key-repair), while the session's native semantics is operational
// (CP(t̄) = 1 over the hitting distribution). The planner therefore gates
// the fast path on the cases where the two provably coincide:
//
//   gate 0  the generator is uniform-support ("uniform" or
//           "uniform-deletions" cache identity): certainty depends only on
//           which repairs are reachable, and preference-style generators
//           prune outcomes;
//   gate 1  Σ is a set of primary keys and q is a self-join-free CQ with
//           an acyclic attack graph (the FO-rewritable fragment);
//   gate 2  either (a) q has no existential variables — both semantics
//           then reduce to "every matched fact lies in a conflict-free
//           key group", which is exactly what the rewriting tests — or
//           (b) every relation q mentions is conflict-free in D — all
//           repairs then agree with D on q's relations and both certain
//           sets equal Q(D).
//
// Gate 2(b) is data-dependent, so plans are cached under a fingerprint
// that includes the database hash, and sessions invalidate on mutation.
// Everything outside the gates falls back to the walk; kWalk/kRewrite
// modes force a backend (kRewrite errors instead of silently walking).

#ifndef OPCQA_PLANNER_PLANNER_H_
#define OPCQA_PLANNER_PLANNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "planner/certain_rewriting.h"
#include "repair/chain_generator.h"

namespace opcqa {
namespace planner {

enum class PlanMode {
  kAuto,     // dispatch per query (rewriting where proven, else walk)
  kWalk,     // always the chain walk
  kRewrite,  // force the rewriting; error outside the proven fragment
};

enum class PlanKind {
  kRewriting,
  kMemoizedWalk,
};

const char* PlanModeName(PlanMode mode);
const char* PlanKindName(PlanKind kind);
/// Parses "auto" | "walk" | "rewrite".
Result<PlanMode> ParsePlanMode(std::string_view text);

/// One dispatch decision.
struct QueryPlan {
  PlanKind kind = PlanKind::kMemoizedWalk;
  /// Why this backend was chosen (classification verdict / gate outcome).
  std::string reason;
  /// The compiled certain-answer rewriting (kRewriting only).
  Query rewritten;
};

/// Monotone planner counters.
struct PlannerStats {
  uint64_t rewrite_plans = 0;      // decisions that chose the rewriting
  uint64_t walk_plans = 0;         // decisions that fell back to the walk
  uint64_t plan_cache_hits = 0;    // decisions served from the plan cache
  uint64_t plan_cache_misses = 0;  // decisions computed fresh
  uint64_t invalidations = 0;      // Invalidate() calls (database mutations)
};

class QueryPlanner {
 public:
  explicit QueryPlanner(PlanMode mode = PlanMode::kAuto) : mode_(mode) {}

  PlanMode mode() const { return mode_; }
  void set_mode(PlanMode mode) { mode_ = mode; }

  /// Decides (and caches) the backend for `query` over (db, Σ) under
  /// `generator`. kWalk mode always plans the walk; kRewrite returns
  /// InvalidArgument with the fallback reason when the query is outside
  /// the proven-coincident fragment. The cache key fingerprints query
  /// text, constraints, generator identity and the database hash, so a
  /// mutated database never replays a stale gate-2(b) decision even
  /// before Invalidate() runs.
  Result<QueryPlan> Plan(const Database& db, const ConstraintSet& constraints,
                         const ChainGenerator& generator, const Query& query);

  /// Drops every cached plan (call after mutating the database).
  void Invalidate();

  const PlannerStats& stats() const { return stats_; }

 private:
  QueryPlan Decide(const Database& db, const ConstraintSet& constraints,
                   const ChainGenerator& generator, const Query& query);

  PlanMode mode_;
  PlannerStats stats_;
  std::map<std::string, QueryPlan> cache_;
};

/// True when no two facts of `pred` in `db` agree on `key_positions` —
/// the relation then survives every repair unchanged (gate 2(b)).
bool RelationConflictFree(const Database& db, PredId pred,
                          const std::vector<size_t>& key_positions);

}  // namespace planner
}  // namespace opcqa

#endif  // OPCQA_PLANNER_PLANNER_H_
