#include "planner/planner.h"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/fact_store.h"
#include "util/string_util.h"

namespace opcqa {
namespace planner {

namespace {

/// Generators whose chains reach every justified extension with positive
/// probability. Certainty (CP = 1) depends only on the reachable repair
/// set, so these share one certain-answer semantics; preference/trust
/// generators prune extensions and do not.
bool UniformSupportGenerator(const ChainGenerator& generator) {
  const std::string identity = generator.cache_identity();
  return identity == "uniform" || identity == "uniform-deletions";
}

std::string FingerprintConstraints(const Schema& schema,
                                   const ConstraintSet& constraints) {
  std::string fingerprint;
  for (const Constraint& constraint : constraints) {
    fingerprint += constraint.ToString(schema);
    fingerprint += ';';
  }
  return fingerprint;
}

}  // namespace

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kAuto:
      return "auto";
    case PlanMode::kWalk:
      return "walk";
    case PlanMode::kRewrite:
      return "rewrite";
  }
  return "?";
}

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kRewriting:
      return "rewriting";
    case PlanKind::kMemoizedWalk:
      return "memoized-walk";
  }
  return "?";
}

Result<PlanMode> ParsePlanMode(std::string_view text) {
  if (text == "auto") return PlanMode::kAuto;
  if (text == "walk") return PlanMode::kWalk;
  if (text == "rewrite") return PlanMode::kRewrite;
  return Status::InvalidArgument(
      StrCat("unknown plan mode: ", std::string(text),
             " (expected auto|walk|rewrite)"));
}

bool RelationConflictFree(const Database& db, PredId pred,
                          const std::vector<size_t>& key_positions) {
  const std::vector<FactId>& facts = db.FactsOf(pred);
  if (facts.size() < 2) return true;
  const FactStore& store = FactStore::Global();
  std::set<std::vector<ConstId>> seen;
  std::vector<ConstId> key(key_positions.size());
  for (FactId id : facts) {
    const ConstId* args = store.args(id);
    for (size_t i = 0; i < key_positions.size(); ++i) {
      key[i] = args[key_positions[i]];
    }
    if (!seen.insert(key).second) return false;
  }
  return true;
}

QueryPlan QueryPlanner::Decide(const Database& db,
                               const ConstraintSet& constraints,
                               const ChainGenerator& generator,
                               const Query& query) {
  QueryPlan plan;
  plan.kind = PlanKind::kMemoizedWalk;
  if (mode_ == PlanMode::kWalk) {
    plan.reason = "walk forced by plan mode";
    return plan;
  }
  // Gate 0: uniform-support generator.
  if (!UniformSupportGenerator(generator)) {
    plan.reason = StrCat("generator '", generator.name(),
                         "' prunes extensions; rewriting decides classical "
                         "certainty only for uniform-support chains");
    return plan;
  }
  // Gate 1: the FO-rewritable fragment.
  CertaintyClassification cls =
      ClassifyCertainty(query, constraints, db.schema());
  if (!cls.rewritable) {
    plan.reason = cls.reason;
    return plan;
  }
  // Gate 2: operational certainty (CP = 1 under the uniform chain) must
  // coincide with the classical certainty the rewriting decides.
  bool no_existential = query.conjunctive_view()->existential.empty();
  if (no_existential) {
    plan.reason = StrCat(cls.reason, "; coincidence: quantifier-free query");
  } else {
    bool conflict_free = true;
    for (const Atom& atom : query.conjunctive_view()->body.atoms()) {
      std::vector<size_t> key_positions =
          cls.keys.KeyPositions(atom.pred(), atom.arity());
      if (!RelationConflictFree(db, atom.pred(), key_positions)) {
        conflict_free = false;
        break;
      }
    }
    if (!conflict_free) {
      plan.reason = StrCat(
          cls.reason,
          "; but operational and classical certainty may diverge "
          "(existential query over a conflicted relation)");
      return plan;
    }
    plan.reason =
        StrCat(cls.reason, "; coincidence: query relations conflict-free");
  }
  Result<Query> rewritten = CompileCertainRewriting(query, cls);
  if (!rewritten.ok()) {
    plan.reason = StrCat("rewriting compilation failed: ",
                         rewritten.status().message());
    return plan;
  }
  plan.kind = PlanKind::kRewriting;
  plan.rewritten = std::move(rewritten.value());
  return plan;
}

Result<QueryPlan> QueryPlanner::Plan(const Database& db,
                                     const ConstraintSet& constraints,
                                     const ChainGenerator& generator,
                                     const Query& query) {
  OPCQA_TRACE_SPAN("planner.plan");
  static obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("planner.plan_ms");
  obs::ScopedTimer timer(latency);
  const Schema& schema = db.schema();
  std::string key =
      StrCat(PlanModeName(mode_), "|", query.ToString(schema), "|",
             generator.name(), "/", generator.cache_identity(), "|",
             FingerprintConstraints(schema, constraints), "|", db.Hash());
  auto it = cache_.find(key);
  QueryPlan plan;
  if (it != cache_.end()) {
    ++stats_.plan_cache_hits;
    plan = it->second;
  } else {
    ++stats_.plan_cache_misses;
    plan = Decide(db, constraints, generator, query);
    cache_.emplace(key, plan);
  }
  if (plan.kind == PlanKind::kRewriting) {
    ++stats_.rewrite_plans;
  } else {
    ++stats_.walk_plans;
    if (mode_ == PlanMode::kRewrite) {
      return Status::InvalidArgument(
          StrCat("--plan=rewrite forced but query '", query.name(),
                 "' is outside the proven-coincident FO fragment: ",
                 plan.reason));
    }
  }
  return plan;
}

void QueryPlanner::Invalidate() {
  cache_.clear();
  ++stats_.invalidations;
}

}  // namespace planner
}  // namespace opcqa
